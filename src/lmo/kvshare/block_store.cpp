#include "lmo/kvshare/block_store.hpp"

#include "lmo/util/check.hpp"

namespace lmo::kvshare {

void BlockStoreConfig::validate() const {
  LMO_CHECK_GT(block_tokens, 0);
  LMO_CHECK_GT(bytes_per_block, 0u);
}

BlockStore::BlockStore(const BlockStoreConfig& config,
                       runtime::MemoryPool* pool)
    : config_(config), pool_(pool) {
  config_.validate();
}

BlockStore::~BlockStore() {
  // Blocks still live at teardown (leases released after the cache — a
  // usage error guarded elsewhere — or normal shutdown) return their bytes.
  if (pool_ != nullptr && live_ > 0) {
    pool_->release(live_ * config_.bytes_per_block);
  }
}

BlockStore::Block& BlockStore::slot(std::int64_t id) {
  LMO_CHECK_GE(id, 0);
  LMO_CHECK_LT(id, static_cast<std::int64_t>(blocks_.size()));
  Block& b = *blocks_[static_cast<std::size_t>(id)];
  LMO_CHECK_MSG(b.live, "kvshare block id refers to a freed block");
  return b;
}

const BlockStore::Block& BlockStore::slot(std::int64_t id) const {
  return const_cast<BlockStore*>(this)->slot(id);
}

std::int64_t BlockStore::try_allocate() {
  if (config_.capacity_bytes > 0 &&
      bytes_in_use() + config_.bytes_per_block > config_.capacity_bytes) {
    return -1;
  }
  if (pool_ != nullptr && !pool_->try_charge(config_.bytes_per_block)) {
    return -1;
  }
  std::int64_t id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<std::int64_t>(blocks_.size());
    blocks_.push_back(std::make_unique<Block>());
  }
  Block& b = *blocks_[static_cast<std::size_t>(id)];
  b.data.assign(config_.payload_floats, 0.0f);
  b.refs = 1;
  b.live = true;
  ++live_;
  return id;
}

void BlockStore::ref(std::int64_t id) { ++slot(id).refs; }

void BlockStore::unref(std::int64_t id) {
  Block& b = slot(id);
  LMO_CHECK_GT(b.refs, 0);
  if (--b.refs == 0) {
    b.live = false;
    b.data.clear();
    b.data.shrink_to_fit();
    free_.push_back(id);
    LMO_CHECK_GT(live_, 0u);
    --live_;
    if (pool_ != nullptr) pool_->release(config_.bytes_per_block);
  }
}

float* BlockStore::payload(std::int64_t id) {
  Block& b = slot(id);
  return b.data.empty() ? nullptr : b.data.data();
}

const float* BlockStore::payload(std::int64_t id) const {
  return const_cast<BlockStore*>(this)->payload(id);
}

int BlockStore::refcount(std::int64_t id) const { return slot(id).refs; }

}  // namespace lmo::kvshare
