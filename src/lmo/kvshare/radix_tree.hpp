// Radix tree over token-id sequences at block granularity (the
// RadixAttention structure, aligned to the block store's fixed block size).
// Every node spans exactly `block_tokens` token ids and owns one block in
// the BlockStore; a root→node path spells out a cached prompt prefix.
// Children are keyed by their full token span, so two blocks that share a
// first token but diverge later are distinct children — lookup compares
// whole spans, which keeps matches exact.
//
// Eviction is LRU-by-leaf: only childless, unpinned nodes are candidates,
// so a chain disappears tail-first and a pinned (in-use) node transitively
// protects every ancestor (ancestors have children by construction). Ties
// on the LRU stamp break on node id, which makes eviction order fully
// deterministic — chaos runs with sharing enabled replay identically.
//
// Not internally synchronized; PrefixCache serializes access.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

namespace lmo::kvshare {

class RadixTree {
 public:
  struct Node {
    std::vector<std::int64_t> tokens;  ///< exactly block_tokens ids
    std::int64_t block = -1;           ///< BlockStore id
    Node* parent = nullptr;
    std::map<std::vector<std::int64_t>, std::unique_ptr<Node>> children;
    int pins = 0;
    std::uint64_t last_use = 0;  ///< monotonic tick, not wall time
    std::uint64_t id = 0;        ///< creation order; LRU tie-break
  };

  explicit RadixTree(std::int64_t block_tokens);

  std::int64_t block_tokens() const { return block_tokens_; }

  /// Longest cached prefix of `tokens` made of whole blocks, root-first.
  /// Refreshes the LRU stamp of every node on the path.
  std::vector<Node*> lookup(std::span<const std::int64_t> tokens);

  /// Extend the tree to cover every whole block of `tokens`. `make_block`
  /// is invoked once per missing node with the block's token offset and
  /// returns a BlockStore id, or -1 to stop growing (allocation pressure).
  /// Returns the chain actually present afterwards, root-first.
  std::vector<Node*> insert(
      std::span<const std::int64_t> tokens,
      const std::function<std::int64_t(std::int64_t token_offset)>&
          make_block);

  /// Pin / unpin a node against eviction. Pins protect ancestors
  /// transitively (they have children while this node exists).
  void pin(Node* node);
  void unpin(Node* node);

  /// Evict the least-recently-used childless unpinned node. Returns its
  /// block id, or -1 when every node is pinned or covered by children.
  std::int64_t evict_lru();

  /// Detach `node` and its whole subtree from the tree, transferring
  /// ownership to the caller (the quarantine rung of the integrity repair
  /// ladder). lookup/insert/evict_lru can no longer reach any detached
  /// node, but pins held on them stay valid for as long as the returned
  /// owner lives — existing leases read their blocks out undisturbed.
  std::unique_ptr<Node> detach(Node* node);

  std::size_t node_count() const { return node_count_; }

 private:
  std::int64_t block_tokens_;
  Node root_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t node_count_ = 0;
};

}  // namespace lmo::kvshare
