#include "lmo/kvshare/shared_kv_cache.hpp"

#include <cstring>

#include "lmo/util/check.hpp"

namespace lmo::kvshare {

SharedKVCache::SharedKVCache(std::int64_t hidden, std::int64_t layer,
                             std::shared_ptr<PrefixLease> lease,
                             std::int64_t shared_len,
                             runtime::MemoryPool& pool)
    : hidden_(hidden),
      layer_(layer),
      lease_(std::move(lease)),
      shared_len_(shared_len),
      pool_(&pool) {
  LMO_CHECK_GT(hidden_, 0);
  LMO_CHECK(lease_ != nullptr);
  block_tokens_ = lease_->matched_tokens() /
                  static_cast<std::int64_t>(lease_->blocks());
  LMO_CHECK_GE(shared_len_, 0);
  LMO_CHECK_LE(shared_len_, lease_->matched_tokens());
  LMO_CHECK_EQ(shared_len_ % block_tokens_, 0);
  LMO_CHECK_MSG(lease_->k_plane(0, layer_) != nullptr,
                "SharedKVCache requires a materialized prefix cache");
}

SharedKVCache::SharedKVCache(std::int64_t hidden, runtime::MemoryPool& pool)
    : hidden_(hidden), pool_(&pool) {
  LMO_CHECK_GT(hidden_, 0);
}

SharedKVCache::~SharedKVCache() {
  if (pool_ != nullptr && charged_ > 0) pool_->release(charged_);
}

void SharedKVCache::charge_delta(std::size_t old_floats,
                                 std::size_t new_floats) {
  const std::size_t old_bytes = old_floats * sizeof(float);
  const std::size_t new_bytes = new_floats * sizeof(float);
  if (new_bytes > old_bytes) {
    pool_->charge(new_bytes - old_bytes);
    charged_ += new_bytes - old_bytes;
  } else if (old_bytes > new_bytes) {
    pool_->release(old_bytes - new_bytes);
    charged_ -= old_bytes - new_bytes;
  }
}

void SharedKVCache::append(const tensor::Tensor& k_row,
                           const tensor::Tensor& v_row) {
  LMO_CHECK_EQ(k_row.numel(), hidden_);
  LMO_CHECK_EQ(v_row.numel(), hidden_);
  const std::size_t old_floats = k_priv_.size() + v_priv_.size();
  auto k = k_row.f32();
  auto v = v_row.f32();
  // Charge before growing so a denied charge (pool pressure / fault
  // injection) leaves the cache untouched.
  charge_delta(old_floats,
               old_floats + 2 * static_cast<std::size_t>(hidden_));
  k_priv_.insert(k_priv_.end(), k.begin(), k.end());
  v_priv_.insert(v_priv_.end(), v.begin(), v.end());
}

const float* SharedKVCache::row_ptr(bool key, std::int64_t t) const {
  if (t < shared_len_) {
    const std::size_t block = static_cast<std::size_t>(t / block_tokens_);
    const std::int64_t slot = t % block_tokens_;
    const float* plane = key ? lease_->k_plane(block, layer_)
                             : lease_->v_plane(block, layer_);
    return plane + slot * hidden_;
  }
  const auto& priv = key ? k_priv_ : v_priv_;
  return priv.data() + (t - shared_len_) * hidden_;
}

void SharedKVCache::copy_row(bool key, std::int64_t t, float* dst) const {
  LMO_CHECK_GE(t, 0);
  LMO_CHECK_LT(t, length());
  std::memcpy(dst, row_ptr(key, t),
              static_cast<std::size_t>(hidden_) * sizeof(float));
}

tensor::Tensor SharedKVCache::materialize(bool key) const {
  const std::int64_t n = length();
  tensor::Tensor out = tensor::Tensor::zeros({n, hidden_});
  auto dst = out.f32();
  for (std::int64_t t = 0; t < n; ++t) {
    std::memcpy(dst.data() + t * hidden_, row_ptr(key, t),
                static_cast<std::size_t>(hidden_) * sizeof(float));
  }
  return out;
}

tensor::Tensor SharedKVCache::keys() const { return materialize(true); }

tensor::Tensor SharedKVCache::values() const { return materialize(false); }

void SharedKVCache::truncate(std::int64_t new_length) {
  LMO_CHECK_GE(new_length, 0);
  LMO_CHECK_LE(new_length, length());
  const std::size_t old_floats = k_priv_.size() + v_priv_.size();
  if (new_length >= shared_len_) {
    // Tail-only truncate: drop private rows past new_length.
    const std::size_t keep =
        static_cast<std::size_t>((new_length - shared_len_) * hidden_);
    k_priv_.resize(keep);
    v_priv_.resize(keep);
    charge_delta(old_floats, 2 * keep);
    return;
  }
  // Copy-on-write: the cut lands inside the shared region. Whole blocks
  // before the cut stay shared; the partial block's surviving rows are
  // copied into a fresh private tail. The shared payloads are never
  // written.
  const std::int64_t keep_shared =
      (new_length / block_tokens_) * block_tokens_;
  const std::int64_t priv_rows = new_length - keep_shared;
  std::vector<float> k_new(static_cast<std::size_t>(priv_rows * hidden_));
  std::vector<float> v_new(static_cast<std::size_t>(priv_rows * hidden_));
  for (std::int64_t i = 0; i < priv_rows; ++i) {
    const std::int64_t t = keep_shared + i;
    std::memcpy(k_new.data() + i * hidden_, row_ptr(true, t),
                static_cast<std::size_t>(hidden_) * sizeof(float));
    std::memcpy(v_new.data() + i * hidden_, row_ptr(false, t),
                static_cast<std::size_t>(hidden_) * sizeof(float));
  }
  charge_delta(old_floats, k_new.size() + v_new.size());
  k_priv_ = std::move(k_new);
  v_priv_ = std::move(v_new);
  shared_len_ = keep_shared;
  if (shared_len_ == 0) lease_.reset();
}

std::unique_ptr<runtime::KVCacheBase> SharedKVCache::clone() const {
  auto copy = std::unique_ptr<SharedKVCache>(
      shared_len_ > 0
          ? new SharedKVCache(hidden_, layer_, lease_, shared_len_, *pool_)
          : new SharedKVCache(hidden_, *pool_));
  copy->charge_delta(0, k_priv_.size() + v_priv_.size());
  copy->k_priv_ = k_priv_;
  copy->v_priv_ = v_priv_;
  return copy;
}

}  // namespace lmo::kvshare
