// Ref-counted store of fixed-size KV blocks — the storage layer under the
// cross-request prefix cache. A block holds `block_tokens` tokens' worth of
// K/V rows for every layer of the model, laid out so one block serves the
// whole forward pass:
//
//   payload[((layer * 2 + kv) * block_tokens + slot) * hidden + d]
//
// with kv = 0 for keys and 1 for values. Blocks are charged to the
// runtime's MemoryPool (so prefix-cache residency competes with every other
// host allocation and fault-injected pool denials apply), or — when
// constructed without a pool — to an internal byte budget, which is how the
// serving simulator models a prefix cache without materializing floats.
//
// The store is not internally synchronized; PrefixCache serializes access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lmo/runtime/mempool.hpp"

namespace lmo::kvshare {

struct BlockStoreConfig {
  std::int64_t block_tokens = 16;
  /// Floats materialized per block (0 = accounting-only blocks with no
  /// payload, used by the serving simulator).
  std::size_t payload_floats = 0;
  /// Bytes charged per block (to the pool or the internal budget).
  std::size_t bytes_per_block = 0;
  /// Hard byte budget for the store; 0 = bounded only by the pool.
  std::size_t capacity_bytes = 0;

  void validate() const;
};

class BlockStore {
 public:
  BlockStore(const BlockStoreConfig& config, runtime::MemoryPool* pool);
  ~BlockStore();
  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Allocate a block with refcount 1. Returns -1 when the capacity budget
  /// is exhausted or the pool declines the charge (including via fault
  /// injection) — callers evict and retry.
  std::int64_t try_allocate();
  void ref(std::int64_t id);
  /// Drop one reference; at zero the block is freed and its bytes released.
  void unref(std::int64_t id);

  /// Payload base pointer; stable for the lifetime of the block. nullptr in
  /// accounting-only mode.
  float* payload(std::int64_t id);
  const float* payload(std::int64_t id) const;
  int refcount(std::int64_t id) const;

  std::size_t live_blocks() const { return live_; }
  std::size_t bytes_in_use() const { return live_ * config_.bytes_per_block; }
  const BlockStoreConfig& config() const { return config_; }

 private:
  struct Block {
    std::vector<float> data;
    int refs = 0;
    bool live = false;
  };

  Block& slot(std::int64_t id);
  const Block& slot(std::int64_t id) const;

  BlockStoreConfig config_;
  runtime::MemoryPool* pool_;
  std::vector<std::unique_ptr<Block>> blocks_;
  std::vector<std::int64_t> free_;
  std::size_t live_ = 0;
};

}  // namespace lmo::kvshare
