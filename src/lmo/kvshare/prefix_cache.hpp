// Cross-request KV prefix cache: the facade tying the radix tree to the
// block store, with pinning leases, pool-pressure-driven LRU eviction and
// kvshare.* metrics. Two modes share one implementation:
//
//  * materialized (Generator): blocks hold real f32 K/V planes for every
//    layer; a matched lease hands the transformer bit-exact cached rows so
//    prefill runs only over the unmatched prompt suffix.
//  * accounting-only (server_sim): blocks carry no payload, only modelled
//    bytes — the simulator asks "how many prompt tokens would hit?" and
//    charges the cost model for the remainder.
//
// All public methods are mutex-serialized, so concurrent generator /
// prefetch threads may match, insert and release leases freely (the TSan
// shard exercises exactly that). Lease payload pointers remain valid
// without the lock because blocks are immutable once filled and pinned
// chains are never evicted.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "lmo/integrity/integrity.hpp"
#include "lmo/kvshare/block_store.hpp"
#include "lmo/kvshare/radix_tree.hpp"
#include "lmo/telemetry/metrics.hpp"

namespace lmo::kvshare {

struct PrefixCacheConfig {
  std::int64_t block_tokens = 16;
  /// Materialized mode: per-layer hidden width and layer count.
  std::int64_t hidden = 0;
  std::int64_t num_layers = 0;
  bool materialize = true;
  /// Accounting mode: modelled KV bytes per cached token.
  std::size_t bytes_per_token = 0;
  /// Hard byte budget; 0 = bounded only by the pool.
  std::size_t capacity_bytes = 0;

  void validate() const;
  /// Floats per materialized block: layers × {K,V} × block_tokens × hidden.
  std::size_t payload_floats() const;
  std::size_t block_bytes() const;
  std::size_t token_bytes() const;
};

class PrefixCache;

/// A pin on a cached block chain. While alive, the chain cannot be evicted
/// and its payload planes stay valid. Created by PrefixCache::match() /
/// insert(); released on destruction. The PrefixCache must outlive every
/// lease it hands out.
class PrefixLease {
 public:
  ~PrefixLease();
  PrefixLease(const PrefixLease&) = delete;
  PrefixLease& operator=(const PrefixLease&) = delete;

  std::int64_t matched_tokens() const {
    return static_cast<std::int64_t>(blocks_.size()) * block_tokens_;
  }
  std::size_t blocks() const { return blocks_.size(); }

  /// K (or V) plane of chain block `index` for `layer`:
  /// [block_tokens × hidden] f32. nullptr in accounting-only mode.
  const float* k_plane(std::size_t index, std::int64_t layer) const;
  const float* v_plane(std::size_t index, std::int64_t layer) const;

 private:
  friend class PrefixCache;
  PrefixLease() = default;

  PrefixCache* cache_ = nullptr;
  RadixTree::Node* node_ = nullptr;  ///< deepest pinned node
  std::int64_t block_tokens_ = 0;
  std::int64_t hidden_ = 0;
  std::vector<std::int64_t> blocks_;       ///< chain, root-first
  std::vector<const float*> payloads_;     ///< base payload per block
};

class PrefixCache {
 public:
  /// `pool` (nullable) is charged per block; `metrics` (nullable) receives
  /// the kvshare.* counters and gauges.
  ///
  /// When a pool is given, the cache registers a pressure callback on it:
  /// under allocation pressure (a watermark crossing or a would-fail
  /// charge from *any* allocator sharing the pool) it evicts unpinned
  /// chains to relieve the requested bytes before the pool fails the
  /// allocation. The callback is removed in the destructor; the cache must
  /// not be destroyed while other threads can still drive the pool into
  /// pressure.
  /// `integrity` (nullable, caller-owned) fingerprints each block at
  /// insert-fill time and re-checks matched chains per its policy. A block
  /// that fails verification is *quarantined*: its subtree is detached from
  /// the radix tree so no new request can match it, the match is truncated
  /// at the corrupt block, and existing leases keep reading their pinned
  /// (still-referenced) payloads until the last pin drops, at which point
  /// the blocks are freed.
  PrefixCache(const PrefixCacheConfig& config, runtime::MemoryPool* pool,
              telemetry::MetricsRegistry* metrics,
              integrity::ChecksumRegistry* integrity = nullptr);
  ~PrefixCache();
  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  /// Fills a freshly allocated block: `token_offset` is the block's first
  /// token position in the prompt, `payload` its float base (layout per
  /// block_store.hpp). Null in accounting-only mode.
  using BlockWriter =
      std::function<void(std::int64_t token_offset, float* payload)>;

  /// Longest-prefix match. The matched length is a whole number of blocks,
  /// capped below tokens.size() so a fully cached prompt still prefills at
  /// least one token (the logits row). Returns nullptr on a total miss.
  /// Records kvshare.hit_tokens / miss_tokens / bytes_saved.
  std::shared_ptr<PrefixLease> match(std::span<const std::int64_t> tokens);

  /// Cache every whole block of `tokens`, filling only blocks not already
  /// present. Under allocation pressure, evicts LRU leaves; if pressure
  /// persists the chain is cut short (graceful degradation, never an
  /// error). Returns a lease over the resulting chain, or nullptr when no
  /// block could be cached.
  std::shared_ptr<PrefixLease> insert(std::span<const std::int64_t> tokens,
                                      const BlockWriter& fill);

  /// Evict up to `max_blocks` LRU leaves (pool-pressure relief, tests).
  /// Returns the number actually evicted.
  std::size_t evict(std::size_t max_blocks);

  const PrefixCacheConfig& config() const { return config_; }
  std::int64_t block_tokens() const { return config_.block_tokens; }

  std::size_t blocks_in_use() const;
  std::size_t bytes_in_use() const;
  std::size_t node_count() const;
  /// Live pin leases (the "kvshare.pinned" gauge): every matched or
  /// inserted chain still held by a request. Must return to baseline once
  /// all requests — including aborted ones — drop their leases.
  std::size_t pinned_leases() const;

  /// Blocks detached by quarantine but not yet freed (a lease created
  /// before the corruption was detected still pins their subtree). Returns
  /// to 0 once those leases release.
  std::size_t quarantined_blocks() const;

 private:
  friend class PrefixLease;

  /// Lock holder tracking so the pool pressure callback can detect
  /// re-entrancy: an insert whose own block charge crosses a watermark
  /// must not recurse into evict() (self-deadlock); its allocation loop
  /// already evicts.
  class Guard {
   public:
    explicit Guard(const PrefixCache& cache)
        : cache_(cache), lock_(cache.mutex_) {
      cache_.lock_holder_.store(std::this_thread::get_id(),
                                std::memory_order_relaxed);
    }
    ~Guard() {
      if (lock_.owns_lock()) clear();
    }
    void unlock() {
      clear();
      lock_.unlock();
    }

   private:
    void clear() {
      cache_.lock_holder_.store(std::thread::id{},
                                std::memory_order_relaxed);
    }
    const PrefixCache& cache_;
    std::unique_lock<std::mutex> lock_;
  };

  void release(PrefixLease& lease);
  std::int64_t allocate_with_eviction();
  std::shared_ptr<PrefixLease> make_lease(
      const std::vector<RadixTree::Node*>& chain);
  void update_gauges();
  /// Inject/verify the matched chain's block payloads; on a detected
  /// corruption truncates `chain` at the corrupt block and quarantines its
  /// subtree. Materialized mode only.
  void verify_chain_locked(std::vector<RadixTree::Node*>& chain);
  void quarantine_locked(RadixTree::Node* node);
  /// Free quarantined subtrees whose last pin has dropped.
  void reap_quarantined_locked();
  /// Pool pressure callback target: evict unpinned chains worth up to
  /// `bytes_needed`; returns bytes released. No-op when called from a
  /// thread already inside a cache operation.
  std::size_t relieve_pressure(std::size_t bytes_needed);

  void count(const char* name, std::uint64_t n);

  PrefixCacheConfig config_;
  mutable std::mutex mutex_;
  mutable std::atomic<std::thread::id> lock_holder_{};
  BlockStore store_;
  RadixTree tree_;
  runtime::MemoryPool* pool_ = nullptr;
  int pressure_callback_id_ = -1;
  std::size_t pinned_ = 0;
  integrity::ChecksumRegistry* integrity_ = nullptr;
  /// Per-block fingerprint and verification ordinal, recorded when the
  /// block is filled at insert.
  struct BlockPrint {
    std::uint32_t crc = 0;
    std::uint64_t loads = 0;
  };
  std::map<std::int64_t, BlockPrint> block_crcs_;
  /// Detached-but-still-pinned subtrees awaiting their last release.
  struct Quarantined {
    std::unique_ptr<RadixTree::Node> subtree;
    std::vector<std::int64_t> blocks;
  };
  std::vector<Quarantined> quarantined_;
  /// Looked up by name per operation (match/insert granularity), so a
  /// registry reset() between runs never leaves dangling metric pointers.
  telemetry::MetricsRegistry* metrics_;
};

}  // namespace lmo::kvshare
