#include "lmo/ckpt/format.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "lmo/ckpt/binary_io.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"

namespace lmo::ckpt {
namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 4;

}  // namespace

namespace {

void write_all(int fd, const std::vector<std::byte>& chunk,
               const std::string& path) {
  std::size_t done = 0;
  while (done < chunk.size()) {
    const ssize_t n = ::write(fd, chunk.data() + done, chunk.size() - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      LMO_CHECK_MSG(false, "write failed for checkpoint: " + path + ": " +
                               std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_checkpoint_file(const std::string& path, PayloadKind kind,
                           const std::vector<std::byte>& payload) {
  ByteWriter header;
  header.u64(kMagic);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());

  ByteWriter trailer;
  trailer.u32(crc32(payload));

  auto& injector = util::FaultInjector::instance();
  // Crash before the temp file exists: recovery must find the previous
  // published checkpoint untouched.
  injector.maybe_crash(kPublishSite);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  LMO_CHECK_MSG(fd >= 0, "cannot open checkpoint for writing: " + tmp +
                             ": " + std::strerror(errno));
  write_all(fd, header.buffer(), tmp);
  write_all(fd, payload, tmp);
  write_all(fd, trailer.buffer(), tmp);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    LMO_CHECK_MSG(false, "fsync failed for checkpoint: " + tmp + ": " +
                             std::strerror(errno));
  }
  LMO_CHECK_MSG(::close(fd) == 0, "close failed for checkpoint: " + tmp +
                                      ": " + std::strerror(errno));
  // Crash with a complete, durable temp file but before the rename: the
  // previous checkpoint still rules; the orphan .tmp is inert garbage.
  injector.maybe_crash(kPublishSite);
  LMO_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                "rename failed publishing checkpoint: " + tmp + " -> " +
                    path + ": " + std::strerror(errno));
}

std::vector<std::byte> read_checkpoint_file(const std::string& path,
                                            PayloadKind expected_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::CheckpointTruncated("cannot open checkpoint: " + path);
  }
  std::vector<std::byte> raw;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  raw.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!in.good() && !in.eof()) {
    throw util::CheckpointTruncated("read failed for checkpoint: " + path);
  }

  if (raw.size() < kHeaderBytes + kTrailerBytes) {
    throw util::CheckpointTruncated(
        path + ": " + std::to_string(raw.size()) +
        " bytes is shorter than the checkpoint envelope");
  }
  ByteReader header(std::span<const std::byte>(raw.data(), kHeaderBytes));
  const std::uint64_t magic = header.u64();
  if (magic != kMagic) {
    throw util::CheckpointCorrupt(path + ": bad magic (not a checkpoint)");
  }
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    throw util::CheckpointVersionMismatch(
        path + ": format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kFormatVersion));
  }
  const std::uint32_t kind = header.u32();
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    throw util::CheckpointMismatch(
        path + ": payload kind " + std::to_string(kind) + ", expected " +
        std::to_string(static_cast<std::uint32_t>(expected_kind)));
  }
  const std::uint64_t declared = header.u64();
  const std::size_t body = raw.size() - kHeaderBytes - kTrailerBytes;
  if (declared != body) {
    throw util::CheckpointTruncated(
        path + ": payload declares " + std::to_string(declared) +
        " bytes, file holds " + std::to_string(body));
  }

  const std::span<const std::byte> payload(raw.data() + kHeaderBytes, body);
  ByteReader trailer(std::span<const std::byte>(
      raw.data() + kHeaderBytes + body, kTrailerBytes));
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t computed_crc = crc32(payload);
  if (stored_crc != computed_crc) {
    throw util::CheckpointCorrupt(path + ": CRC mismatch (stored " +
                                  std::to_string(stored_crc) + ", computed " +
                                  std::to_string(computed_crc) + ")");
  }
  return std::vector<std::byte>(payload.begin(), payload.end());
}

}  // namespace lmo::ckpt
