#include "lmo/ckpt/format.hpp"

#include <fstream>

#include "lmo/ckpt/binary_io.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/status.hpp"

namespace lmo::ckpt {
namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;
constexpr std::size_t kTrailerBytes = 4;

}  // namespace

void write_checkpoint_file(const std::string& path, PayloadKind kind,
                           const std::vector<std::byte>& payload) {
  ByteWriter header;
  header.u64(kMagic);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());

  ByteWriter trailer;
  trailer.u32(crc32(payload));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  LMO_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " + path);
  const auto write = [&](const std::vector<std::byte>& chunk) {
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size()));
  };
  write(header.buffer());
  write(payload);
  write(trailer.buffer());
  out.flush();
  LMO_CHECK_MSG(out.good(), "write failed for checkpoint: " + path);
}

std::vector<std::byte> read_checkpoint_file(const std::string& path,
                                            PayloadKind expected_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw util::CheckpointTruncated("cannot open checkpoint: " + path);
  }
  std::vector<std::byte> raw;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  raw.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  if (!in.good() && !in.eof()) {
    throw util::CheckpointTruncated("read failed for checkpoint: " + path);
  }

  if (raw.size() < kHeaderBytes + kTrailerBytes) {
    throw util::CheckpointTruncated(
        path + ": " + std::to_string(raw.size()) +
        " bytes is shorter than the checkpoint envelope");
  }
  ByteReader header(std::span<const std::byte>(raw.data(), kHeaderBytes));
  const std::uint64_t magic = header.u64();
  if (magic != kMagic) {
    throw util::CheckpointCorrupt(path + ": bad magic (not a checkpoint)");
  }
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    throw util::CheckpointVersionMismatch(
        path + ": format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kFormatVersion));
  }
  const std::uint32_t kind = header.u32();
  if (kind != static_cast<std::uint32_t>(expected_kind)) {
    throw util::CheckpointMismatch(
        path + ": payload kind " + std::to_string(kind) + ", expected " +
        std::to_string(static_cast<std::uint32_t>(expected_kind)));
  }
  const std::uint64_t declared = header.u64();
  const std::size_t body = raw.size() - kHeaderBytes - kTrailerBytes;
  if (declared != body) {
    throw util::CheckpointTruncated(
        path + ": payload declares " + std::to_string(declared) +
        " bytes, file holds " + std::to_string(body));
  }

  const std::span<const std::byte> payload(raw.data() + kHeaderBytes, body);
  ByteReader trailer(std::span<const std::byte>(
      raw.data() + kHeaderBytes + body, kTrailerBytes));
  const std::uint32_t stored_crc = trailer.u32();
  const std::uint32_t computed_crc = crc32(payload);
  if (stored_crc != computed_crc) {
    throw util::CheckpointCorrupt(path + ": CRC mismatch (stored " +
                                  std::to_string(stored_crc) + ", computed " +
                                  std::to_string(computed_crc) + ")");
  }
  return std::vector<std::byte>(payload.begin(), payload.end());
}

}  // namespace lmo::ckpt
