// Checkpoint file envelope: a fixed header followed by an opaque payload
// and a CRC-32 trailer.
//
//   offset  size  field
//   0       8     magic "LMOCKPT\0"
//   8       4     format version (u32, little-endian)
//   12      4     payload kind (u32) — what the payload serializes
//   16      8     payload length in bytes (u64)
//   24      N     payload
//   24+N    4     CRC-32 of the payload
//
// Every failure mode maps to one typed util/status error, checked in this
// order: unreadable file / short header → CheckpointTruncated, bad magic →
// CheckpointCorrupt, wrong version → CheckpointVersionMismatch, wrong kind
// → CheckpointMismatch, short payload → CheckpointTruncated, CRC mismatch
// → CheckpointCorrupt. A reader never sees a partially-validated payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmo::ckpt {

inline constexpr std::uint64_t kMagic = 0x0054504B434F4D4CULL;  // "LMOCKPT\0"
// Version 2: RuntimeConfig gained prefix_share / kv_block_tokens and the
// KV codec gained the shared-chain tag (kvshare).
// Version 3: RuntimeConfig gained the disk-tier fingerprint fields
// (disk_layers, disk_capacity, spill_block_bytes) and kRecoveryMeta joined
// the payload kinds.
inline constexpr std::uint32_t kFormatVersion = 3;

/// What a checkpoint payload contains. Stored in the header so `lmo resume`
/// can reject, say, a future scheduler snapshot with a clear error instead
/// of a decode failure deep inside the generator codec.
enum class PayloadKind : std::uint32_t {
  kGeneratorState = 1,
  kRecoveryMeta = 2,  ///< RecoveryManager epoch record (see lmo/recover/)
};

/// Crash-point fault site (util::FaultInjector::maybe_crash) checked twice
/// inside write_checkpoint_file: before the temp file is written and after
/// fsync, immediately before the rename publishes it.
inline constexpr const char* kPublishSite = "ckpt.publish";

/// Atomically write `payload` under the envelope: the bytes land in
/// `path`.tmp, are fsynced, and only then renamed over `path` — a crash at
/// any instruction leaves either the previous checkpoint or the new one,
/// never a torn file. Throws CheckError on I/O failure.
void write_checkpoint_file(const std::string& path, PayloadKind kind,
                           const std::vector<std::byte>& payload);

/// Read and fully validate the envelope at `path`; returns the payload.
/// Throws the typed CheckpointError taxonomy described above.
std::vector<std::byte> read_checkpoint_file(const std::string& path,
                                            PayloadKind expected_kind);

}  // namespace lmo::ckpt
