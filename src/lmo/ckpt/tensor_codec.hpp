// Checkpoint codecs for tensor payloads. Encoding is bit-exact: raw storage
// bytes for dense tensors, payload + per-group metadata verbatim for
// quantized tensors (restored through QuantizedTensor::from_parts, so a
// round trip introduces zero re-quantization drift). Decoders validate
// every size they read and surface problems as the typed checkpoint error
// taxonomy (truncation via ByteReader, inconsistency via CheckError).
#pragma once

#include "lmo/ckpt/binary_io.hpp"
#include "lmo/tensor/quantize.hpp"
#include "lmo/tensor/tensor.hpp"

namespace lmo::ckpt {

void encode_shape(ByteWriter& writer, const tensor::Shape& shape);
tensor::Shape decode_shape(ByteReader& reader);

/// Dense tensor: shape, dtype tag, raw storage bytes.
void encode_tensor(ByteWriter& writer, const tensor::Tensor& value);
tensor::Tensor decode_tensor(ByteReader& reader);

/// Quantized tensor: shape, quant config, payload + group metadata.
void encode_quantized(ByteWriter& writer,
                      const tensor::QuantizedTensor& value);
tensor::QuantizedTensor decode_quantized(ByteReader& reader);

}  // namespace lmo::ckpt
