#include "lmo/ckpt/tensor_codec.hpp"

#include <cstring>

#include "lmo/util/check.hpp"
#include "lmo/util/status.hpp"

namespace lmo::ckpt {

void encode_shape(ByteWriter& writer, const tensor::Shape& shape) {
  writer.u8(static_cast<std::uint8_t>(shape.rank()));
  for (std::size_t axis = 0; axis < shape.rank(); ++axis) {
    writer.i64(shape.dim(axis));
  }
}

tensor::Shape decode_shape(ByteReader& reader) {
  const std::uint8_t rank = reader.u8();
  if (rank > tensor::Shape::kMaxRank) {
    throw util::CheckpointCorrupt("checkpoint shape rank " +
                                  std::to_string(rank) + " exceeds max rank " +
                                  std::to_string(tensor::Shape::kMaxRank));
  }
  tensor::Shape shape;
  for (std::uint8_t axis = 0; axis < rank; ++axis) {
    const std::int64_t extent = reader.i64();
    if (extent < 0) {
      throw util::CheckpointCorrupt("checkpoint shape has negative extent " +
                                    std::to_string(extent));
    }
    shape = shape.appended(extent);
  }
  return shape;
}

void encode_tensor(ByteWriter& writer, const tensor::Tensor& value) {
  LMO_CHECK_MSG(value.defined(), "cannot encode an undefined tensor");
  encode_shape(writer, value.shape());
  writer.u8(static_cast<std::uint8_t>(value.dtype()));
  writer.bytes(value.raw());
}

tensor::Tensor decode_tensor(ByteReader& reader) {
  const tensor::Shape shape = decode_shape(reader);
  const std::uint8_t dtype_tag = reader.u8();
  if (dtype_tag > static_cast<std::uint8_t>(tensor::DType::kI4)) {
    throw util::CheckpointCorrupt("checkpoint tensor has unknown dtype tag " +
                                  std::to_string(dtype_tag));
  }
  const auto dtype = static_cast<tensor::DType>(dtype_tag);
  const std::vector<std::byte> raw = reader.bytes();
  tensor::Tensor out(shape, dtype);
  if (raw.size() != out.byte_size()) {
    throw util::CheckpointCorrupt(
        "checkpoint tensor " + shape.to_string() + " dtype " +
        tensor::to_string(dtype) + " carries " + std::to_string(raw.size()) +
        " storage bytes, expected " + std::to_string(out.byte_size()));
  }
  std::memcpy(out.raw().data(), raw.data(), raw.size());
  return out;
}

void encode_quantized(ByteWriter& writer,
                      const tensor::QuantizedTensor& value) {
  LMO_CHECK_MSG(value.defined(), "cannot encode an undefined quantized tensor");
  encode_shape(writer, value.original_shape());
  writer.u8(static_cast<std::uint8_t>(value.bits()));
  writer.i64(value.group_size());
  writer.i64(value.padded_numel());
  writer.bytes(std::as_bytes(std::span<const std::uint8_t>(
      value.payload().data(), value.payload().size())));
  writer.f32_array(value.group_min());
  writer.f32_array(value.group_scale());
}

tensor::QuantizedTensor decode_quantized(ByteReader& reader) {
  const tensor::Shape shape = decode_shape(reader);
  tensor::QuantConfig config;
  config.bits = reader.u8();
  config.group_size = reader.i64();
  const std::int64_t padded_numel = reader.i64();
  const std::vector<std::byte> raw_payload = reader.bytes();
  std::vector<std::uint8_t> payload(raw_payload.size());
  std::memcpy(payload.data(), raw_payload.data(), raw_payload.size());
  std::vector<float> group_min = reader.f32_array();
  std::vector<float> group_scale = reader.f32_array();
  try {
    return tensor::QuantizedTensor::from_parts(
        shape, config, padded_numel, std::move(payload), std::move(group_min),
        std::move(group_scale));
  } catch (const util::CheckError& e) {
    // from_parts validates internal consistency; in a decode context an
    // inconsistency means the file lied, so re-surface it as corruption.
    throw util::CheckpointCorrupt(std::string("checkpoint quantized tensor "
                                              "is inconsistent: ") +
                                  e.what());
  }
}

}  // namespace lmo::ckpt
