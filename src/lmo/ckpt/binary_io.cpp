#include "lmo/ckpt/binary_io.hpp"

#include <cstring>

#include "lmo/util/checksum.hpp"
#include "lmo/util/status.hpp"

namespace lmo::ckpt {

std::uint32_t crc32(std::span<const std::byte> data) {
  return util::crc32(data);
}

std::uint32_t crc32(const std::vector<std::byte>& data) {
  return util::crc32(data);
}

void ByteWriter::u8(std::uint8_t value) {
  buffer_.push_back(static_cast<std::byte>(value));
}

void ByteWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    u8(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    u8(static_cast<std::uint8_t>(value >> shift));
  }
}

void ByteWriter::i64(std::int64_t value) {
  u64(static_cast<std::uint64_t>(value));
}

void ByteWriter::f32(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void ByteWriter::bytes(std::span<const std::byte> value) {
  u64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void ByteWriter::string(const std::string& value) {
  bytes(std::as_bytes(std::span<const char>(value.data(), value.size())));
}

void ByteWriter::f32_array(std::span<const float> values) {
  u64(values.size());
  const std::size_t start = buffer_.size();
  buffer_.resize(start + values.size() * sizeof(float));
  // Packed copy of the IEEE bit patterns; faster than per-element f32()
  // for KV payloads, identical layout on little-endian hosts.
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      buffer_[start + i * 4 + static_cast<std::size_t>(b)] =
          static_cast<std::byte>(bits >> (8 * b));
    }
  }
}

std::span<const std::byte> ByteReader::take(std::size_t count) {
  if (count > remaining()) {
    throw util::CheckpointTruncated(
        "checkpoint payload truncated: need " + std::to_string(count) +
        " bytes at offset " + std::to_string(cursor_) + ", have " +
        std::to_string(remaining()));
  }
  const std::span<const std::byte> out = data_.subspan(cursor_, count);
  cursor_ += count;
  return out;
}

std::uint8_t ByteReader::u8() {
  return static_cast<std::uint8_t>(take(1)[0]);
}

std::uint32_t ByteReader::u32() {
  const auto raw = take(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(raw[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t ByteReader::u64() {
  const auto raw = take(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(raw[i]))
             << (8 * i);
  }
  return value;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::vector<std::byte> ByteReader::bytes() {
  const std::uint64_t count = u64();
  // An absurd length (e.g. garbage interpreted as a size) must fail as
  // truncation, not as a bad_alloc from resize.
  const auto raw = take(static_cast<std::size_t>(count));
  return std::vector<std::byte>(raw.begin(), raw.end());
}

std::string ByteReader::string() {
  const std::uint64_t count = u64();
  const auto raw = take(static_cast<std::size_t>(count));
  return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
}

std::vector<float> ByteReader::f32_array() {
  const std::uint64_t count = u64();
  const auto raw = take(static_cast<std::size_t>(count) * sizeof(float));
  std::vector<float> values(static_cast<std::size_t>(count));
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint32_t bits = 0;
    for (int b = 0; b < 4; ++b) {
      bits |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(raw[i * 4 + static_cast<std::size_t>(b)]))
              << (8 * b);
    }
    std::memcpy(&values[i], &bits, sizeof(float));
  }
  return values;
}

}  // namespace lmo::ckpt
