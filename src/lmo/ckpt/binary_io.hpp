// Bounds-checked little-endian binary serialization for checkpoint files.
//
// ByteWriter appends primitives to a growable buffer; ByteReader consumes
// them back, throwing util::CheckpointTruncated the moment a read would run
// past the end — a cut-off file surfaces as one typed error, never as UB or
// a silently short restore. Multi-byte values are written byte-by-byte in
// little-endian order so checkpoints are portable across hosts regardless
// of native endianness or struct layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lmo::ckpt {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over `data`.
std::uint32_t crc32(std::span<const std::byte> data);
std::uint32_t crc32(const std::vector<std::byte>& data);

class ByteWriter {
 public:
  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value);
  void f32(float value);   ///< IEEE bits via u32
  void f64(double value);  ///< IEEE bits via u64
  /// Length-prefixed (u64) byte string.
  void bytes(std::span<const std::byte> value);
  void string(const std::string& value);
  /// Length-prefixed (u64) packed array of f32 bit patterns.
  void f32_array(std::span<const float> values);

  const std::vector<std::byte>& buffer() const { return buffer_; }
  std::vector<std::byte> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Reads back what ByteWriter wrote, in the same order. Does not own the
/// buffer; the caller keeps it alive for the reader's lifetime.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  float f32();
  double f64();
  std::vector<std::byte> bytes();
  std::string string();
  std::vector<float> f32_array();

  std::size_t remaining() const { return data_.size() - cursor_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  /// Advance past `count` bytes; throws util::CheckpointTruncated when
  /// fewer remain.
  std::span<const std::byte> take(std::size_t count);

  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
};

}  // namespace lmo::ckpt
