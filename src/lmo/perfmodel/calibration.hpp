// Calibration: fit the platform's effective-efficiency constants against
// measured throughputs. The paper builds its models from offline profiling
// of the target machine; this is the equivalent for adopting the library on
// new hardware — collect a handful of (workload, policy, measured tokens/s)
// observations, pick which Efficiency fields to fit, and run a coordinate-
// descent minimization of the mean squared *log* throughput error.
//
// Log error makes 2× over-prediction and 2× under-prediction equally bad,
// which is the right loss for throughput ratios.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"

namespace lmo::perfmodel {

struct Observation {
  model::ModelSpec spec;
  model::Workload workload;
  Policy policy;
  double measured_throughput = 0.0;  ///< tokens/s
};

/// A fittable knob: name, accessor into Efficiency, and search bounds.
struct CalibrationKnob {
  std::string name;
  std::function<double&(hw::Efficiency&)> field;
  double lo = 0.01;
  double hi = 1.0;
};

/// The knobs that usually need machine-specific tuning.
std::vector<CalibrationKnob> default_knobs();

struct CalibrationOptions {
  int max_rounds = 12;          ///< coordinate-descent sweeps
  int grid_points = 9;          ///< evaluations per knob per sweep
  double shrink = 0.55;         ///< bracket shrink factor per round
  double tolerance = 1e-4;      ///< stop when loss improves less than this
};

struct CalibrationResult {
  hw::Platform platform;        ///< with fitted Efficiency
  double initial_loss = 0.0;    ///< mean squared log error before
  double final_loss = 0.0;      ///< ... and after
  int rounds = 0;
  /// Per-observation predicted/measured ratios under the fitted constants.
  std::vector<double> fit_ratios;
};

/// Mean squared log(predicted/measured) error of `platform` over the
/// observations. Infeasible predictions contribute a large penalty.
double calibration_loss(const hw::Platform& platform,
                        const std::vector<Observation>& observations);

/// Fit `knobs` (default: default_knobs()) to the observations, starting
/// from `initial`. Deterministic; no randomness.
CalibrationResult calibrate(const hw::Platform& initial,
                            const std::vector<Observation>& observations,
                            const std::vector<CalibrationKnob>& knobs =
                                default_knobs(),
                            const CalibrationOptions& options = {});

}  // namespace lmo::perfmodel
