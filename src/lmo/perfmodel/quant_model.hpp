// Analytical (de)quantization cost models — paper §3.2, Eqs. 3-24.
//
// Each quantization has three modeled phases (the paper profiles padding as
// <5% and drops it): per-group min/max scan, min-max normalization (3 FLOPs
// per element, Eq. 10), and post-processing (pack/copy, memory-bound).
// Dequantization has no min/max phase (Eq. 16 / 24).
//
// One deliberate generalization over the paper's literal formulas: Eq. 13
// writes the min/max scan cost as elements / freq, i.e. one element per
// clock on a single core. Both devices scan with many cores and SIMD lanes,
// so we scale the denominator by cores × a SIMD factor; the *structure*
// (scan ∝ elements, normalize ∝ 3·elements FLOPs, post-process ∝ bytes /
// memory bandwidth) is exactly the paper's.
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"

namespace lmo::perfmodel {

/// Effective scan rate (elements/s) for the min/max phase on a device.
double minmax_scan_rate(const hw::Device& device);

/// Per-phase quantization cost for a tensor of `elements` elements stored in
/// `bytes` bytes, executed on `device` with achieved memory bandwidth
/// `mem_bw` and achieved FLOP rate `flops`.
struct PhaseCosts {
  double minmax = 0.0;
  double normalize = 0.0;
  double postprocess = 0.0;
  double total() const { return minmax + normalize + postprocess; }
};

/// Quantization: all three phases (Eqs. 13-15 shape).
PhaseCosts quantize_cost(double elements, double bytes,
                         const hw::Device& device, double achieved_flops,
                         double achieved_mem_bw);

/// Dequantization: normalize + post-process only (Eqs. 16, 24).
PhaseCosts dequantize_cost(double elements, double bytes,
                           double achieved_flops, double achieved_mem_bw);

// ---------------------------------------------------------------------------
// Paper-level wrappers, one transformer layer each.
// ---------------------------------------------------------------------------

/// Eq. 12: one-time weight quantization on the CPU during initialization,
/// for the fraction `wc` of this layer's weights living on the CPU.
double quan_pf_wgt_seconds(const model::ModelSpec& spec, double wc,
                           const hw::Platform& platform);

/// Eq. 16: weight dequantization on the GPU after each load, fraction `wc`
/// of one layer, quantized at `weight_bits`.
double dequan_wgt_seconds(const model::ModelSpec& spec, double wc,
                          int weight_bits, const hw::Platform& platform);

/// Eq. 20: prefill KV-cache quantization for one layer (on the GPU, where
/// the prefill ran), at `kv_bits`.
double quan_pf_cache_seconds(const model::ModelSpec& spec,
                             const model::Workload& w, int kv_bits,
                             const hw::Platform& platform);

/// Eq. 7 term: quantize the newly generated KV of one token (one layer).
/// `on_cpu` selects the device doing the work (GPU when attention runs on
/// GPU and the cache streams back; CPU when attention is offloaded and the
/// cache is kept compressed in host memory).
double quan_new_cache_seconds(const model::ModelSpec& spec,
                              const model::Workload& w, int kv_bits,
                              bool on_cpu, const hw::Platform& platform);

/// Eq. 6 term: dequantize the old KV cache at decode step t (one layer).
double dequan_old_cache_seconds(const model::ModelSpec& spec,
                                const model::Workload& w, std::int64_t t,
                                int kv_bits, bool on_cpu,
                                const hw::Platform& platform);

}  // namespace lmo::perfmodel
