#include "lmo/perfmodel/quant_model.hpp"

#include "lmo/util/check.hpp"

namespace lmo::perfmodel {
namespace {

// SIMD lanes assumed for the scalar min/max scan (conservative for AVX-512
// and for GPU warps alike; calibration constant, see header).
constexpr double kSimdFactor = 4.0;

// Normalization does 3 FLOPs per element (subtract, scale, round — Eq. 10).
constexpr double kNormFlopsPerElement = 3.0;

}  // namespace

double minmax_scan_rate(const hw::Device& device) {
  return device.freq_hz * static_cast<double>(device.cores) * kSimdFactor;
}

PhaseCosts quantize_cost(double elements, double bytes,
                         const hw::Device& device, double achieved_flops,
                         double achieved_mem_bw) {
  LMO_CHECK_GE(elements, 0.0);
  LMO_CHECK_GE(bytes, 0.0);
  PhaseCosts costs;
  if (elements == 0.0) return costs;
  costs.minmax = elements / minmax_scan_rate(device);
  costs.normalize = elements * kNormFlopsPerElement / achieved_flops;
  costs.postprocess = bytes / achieved_mem_bw;
  return costs;
}

PhaseCosts dequantize_cost(double elements, double bytes,
                           double achieved_flops, double achieved_mem_bw) {
  LMO_CHECK_GE(elements, 0.0);
  PhaseCosts costs;
  if (elements == 0.0) return costs;
  costs.normalize = elements * kNormFlopsPerElement / achieved_flops;
  costs.postprocess = bytes / achieved_mem_bw;
  return costs;
}

double quan_pf_wgt_seconds(const model::ModelSpec& spec, double wc,
                           const hw::Platform& platform) {
  LMO_CHECK_GE(wc, 0.0);
  LMO_CHECK_LE(wc, 1.0);
  const double elements =
      static_cast<double>(spec.weights_per_layer()) * wc;
  const double bytes = elements * 2.0;  // quantizing from fp16 storage
  return quantize_cost(elements, bytes, platform.cpu,
                       platform.cpu_matmul_flops(), platform.cpu_quant_bw())
      .total();
}

double dequan_wgt_seconds(const model::ModelSpec& spec, double wc,
                          int weight_bits, const hw::Platform& platform) {
  if (weight_bits >= 16) return 0.0;
  const double elements =
      static_cast<double>(spec.weights_per_layer()) * wc;
  const double bytes = elements * 2.0;  // fp16 output written to HBM
  return dequantize_cost(elements, bytes, platform.gpu_matmul_flops(),
                         platform.gpu_dequant_bw())
      .total();
}

double quan_pf_cache_seconds(const model::ModelSpec& spec,
                             const model::Workload& w, int kv_bits,
                             const hw::Platform& platform) {
  if (kv_bits >= 16) return 0.0;
  const double bytes = model::pf_kv_cache_bytes(spec, w, 16);
  const double elements = bytes / 2.0;
  return quantize_cost(elements, bytes, platform.gpu,
                       platform.gpu_matmul_flops(),
                       platform.gpu_dequant_bw())
      .total();
}

double quan_new_cache_seconds(const model::ModelSpec& spec,
                              const model::Workload& w, int kv_bits,
                              bool on_cpu, const hw::Platform& platform) {
  if (kv_bits >= 16) return 0.0;
  const double bytes = model::new_kv_cache_bytes(spec, w, 16);
  const double elements = bytes / 2.0;
  if (on_cpu) {
    return quantize_cost(elements, bytes, platform.cpu,
                         platform.cpu_matmul_flops(),
                         platform.cpu_quant_bw())
        .total();
  }
  return quantize_cost(elements, bytes, platform.gpu,
                       platform.gpu_matmul_flops(),
                       platform.gpu_dequant_bw())
      .total();
}

double dequan_old_cache_seconds(const model::ModelSpec& spec,
                                const model::Workload& w, std::int64_t t,
                                int kv_bits, bool on_cpu,
                                const hw::Platform& platform) {
  if (kv_bits >= 16) return 0.0;
  const double bytes = model::kv_cache_bytes_at(spec, w, t, 16);
  const double elements = bytes / 2.0;
  if (on_cpu) {
    return dequantize_cost(elements, bytes, platform.cpu_matmul_flops(),
                           platform.cpu_quant_bw())
        .total();
  }
  return dequantize_cost(elements, bytes, platform.gpu_matmul_flops(),
                         platform.gpu_dequant_bw())
      .total();
}

}  // namespace lmo::perfmodel
