#include "lmo/perfmodel/policy.hpp"

#include <cstdio>

#include "lmo/util/check.hpp"

namespace lmo::perfmodel {

void Policy::validate() const {
  auto check_fraction = [](double f) {
    LMO_CHECK_GE(f, 0.0);
    LMO_CHECK_LE(f, 1.0);
  };
  check_fraction(weights_on_gpu);
  check_fraction(cache_on_gpu);
  check_fraction(activations_on_gpu);
  check_fraction(weights_on_disk);
  LMO_CHECK_LE(weights_on_gpu + weights_on_disk, 1.0 + 1e-9);
  LMO_CHECK(weight_bits == 16 || weight_bits == 8 || weight_bits == 4);
  if (hybrid_attention) {
    LMO_CHECK_MSG(attention_on_cpu,
                  "hybrid attention extends CPU attention with a "
                  "GPU-resident slice");
  }
  LMO_CHECK(kv_bits == 16 || kv_bits == 8 || kv_bits == 4);
}

std::string Policy::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "wg=%.0f%% cg=%.0f%% hg=%.0f%% attn=%s w%d%s kv%d ctl=%s",
                weights_on_gpu * 100.0, cache_on_gpu * 100.0,
                activations_on_gpu * 100.0,
                attention_on_cpu ? "cpu" : "gpu", weight_bits,
                resident_weights_compressed ? "r" : "", kv_bits,
                parallelism_control ? "on" : "off");
  std::string out = buf;
  if (hybrid_attention) out += " hybrid";
  if (weights_on_disk > 0.0) {
    std::snprintf(buf, sizeof(buf), " wd=%.0f%%", weights_on_disk * 100.0);
    out += buf;
  }
  return out;
}

bool Policy::operator==(const Policy& other) const {
  return weights_on_gpu == other.weights_on_gpu &&
         cache_on_gpu == other.cache_on_gpu &&
         activations_on_gpu == other.activations_on_gpu &&
         weights_on_disk == other.weights_on_disk &&
         attention_on_cpu == other.attention_on_cpu &&
         hybrid_attention == other.hybrid_attention &&
         weight_bits == other.weight_bits && kv_bits == other.kv_bits &&
         resident_weights_compressed == other.resident_weights_compressed &&
         parallelism_control == other.parallelism_control;
}

}  // namespace lmo::perfmodel
