// End-to-end analytical performance estimator.
//
// Implements the paper's Eq. 1 (T = T_init + T_pf·l + Σ_t T_gen(t)·l) with
// the six-task decode decomposition of Algorithm 1 / Eq. 2. Two refinements
// over the paper's simplest form, both needed to reproduce its measured
// behaviour:
//   * tasks that share a physical resource (both load tasks share the H2D
//     PCIe direction; CPU attention shares cores with CPU-side (de)quant)
//     serialize, so T_gen = max over *resources*, not over raw tasks;
//   * T_gen(t) depends on the decode step t because the old KV cache grows
//     linearly — we sum the exact per-step times instead of using only the
//     average-size approximation of Eq. 18 (which is also available, for
//     comparison, via `use_average_kv`).
//
// The estimator is pure arithmetic (microseconds per call) so policy
// searches can evaluate thousands of candidates; the DES in lmo::sched
// re-validates the chosen policy with true asynchronous overlap.
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"

namespace lmo::perfmodel {

/// Durations of the six Algorithm-1 tasks (plus the quantization terms
/// folded into them, Eqs. 4-7) for one transformer layer at one decode step.
struct StepCosts {
  double load_weight = 0.0;       ///< incl. GPU weight dequant (Eq. 4)
  double load_weight_disk = 0.0;  ///< disk→CPU read for disk-tier weights
  double load_cache = 0.0;        ///< incl. old-cache dequant (Eq. 6)
  double load_activation = 0.0;
  double store_cache = 0.0;       ///< incl. new-cache quant (Eq. 7)
  double store_activation = 0.0;
  double compute_gpu = 0.0;       ///< MLP (+ attention when on GPU)
  double compute_cpu = 0.0;       ///< attention when offloaded (+ CPU quant)

  // Quantization components, broken out for Fig. 4.
  double quant_time = 0.0;
  double dequant_time = 0.0;

  /// Integrity-verification time (checksumming fetched bytes on the CPU);
  /// zero unless EstimatorOptions::verify_gbps is set. Folded into
  /// compute_cpu, mirrored here for accounting.
  double verify_time = 0.0;

  /// Resource-aware Eq. 2: max(H2D link, D2H link, GPU, CPU) + overhead.
  double t_gen = 0.0;
};

struct Estimate {
  bool fits = false;             ///< respects GPU and CPU memory capacity
  std::string infeasible_reason; ///< empty when fits

  double t_init = 0.0;     ///< weights disk→CPU + one-time quant (Eq. 3)
  double t_prefill = 0.0;  ///< T_pf · l
  double t_decode = 0.0;   ///< Σ_t T_gen(t) · l
  double total_time = 0.0; ///< prefill + decode (throughput denominator)
  double throughput = 0.0; ///< tokens/s = bls·n / total_time

  double gpu_bytes_needed = 0.0;
  double cpu_bytes_needed = 0.0;
  model::FootprintBreakdown footprint;  ///< "mem" column of Table 3

  StepCosts mid_step;  ///< per-layer costs at t = n/2 (representative)

  // Aggregates over the whole run (for Figs. 4 and 8).
  double total_quant_time = 0.0;
  double total_dequant_time = 0.0;
  double total_load_weight = 0.0;
  double total_load_cache = 0.0;
  double total_store_cache = 0.0;
  double total_compute = 0.0;
  double total_verify_time = 0.0;  ///< integrity checksum verification
};

struct EstimatorOptions {
  /// Use the paper's Eq. 18 average-KV-size approximation instead of the
  /// exact per-step sum.
  bool use_average_kv = false;
  /// Drop per-task launch/sync overheads and quantization terms — this is
  /// the (over-optimistic) cost model the paper attributes to FlexGen's LP,
  /// used by the FlexGen baseline's policy search.
  bool flexgen_style = false;
  /// Modeled checksum throughput (GB/s) of the integrity layer's verify
  /// pass over every byte fetched from host storage (IntegrityConfig::
  /// checksum_gbps under verify=always). 0 disables the term entirely, so
  /// legacy estimates are reproduced bit-for-bit.
  double verify_gbps = 0.0;
  /// Measured disk→CPU staging bandwidth (GB/s) overriding the platform's
  /// nominal disk_to_cpu link — typically calibrated against the real
  /// block store (see bench_robustness). 0 keeps the platform link, so
  /// legacy estimates are reproduced bit-for-bit.
  double disk_gbps = 0.0;
};

/// Per-layer step costs at decode step t.
StepCosts step_costs(const model::ModelSpec& spec, const model::Workload& w,
                     const Policy& policy, const hw::Platform& platform,
                     std::int64_t t, const EstimatorOptions& options = {});

/// Full Eq.-1 estimate.
Estimate estimate(const model::ModelSpec& spec, const model::Workload& w,
                  const Policy& policy, const hw::Platform& platform,
                  const EstimatorOptions& options = {});

/// GPU bytes a policy pins resident (weights·wg + peak KV·cg + activations·hg
/// + double-buffered working set). Exposed for policy searches.
double gpu_resident_bytes(const model::ModelSpec& spec,
                          const model::Workload& w, const Policy& policy);
double cpu_resident_bytes(const model::ModelSpec& spec,
                          const model::Workload& w, const Policy& policy);
double disk_resident_bytes(const model::ModelSpec& spec,
                           const model::Workload& w, const Policy& policy);

}  // namespace lmo::perfmodel
