#include "lmo/perfmodel/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "lmo/perfmodel/estimator.hpp"
#include "lmo/util/check.hpp"

namespace lmo::perfmodel {
namespace {

constexpr double kInfeasiblePenalty = 25.0;  // (log 5-ish error)^2 · a lot

}  // namespace

std::vector<CalibrationKnob> default_knobs() {
  return {
      {"pcie", [](hw::Efficiency& e) -> double& { return e.pcie; }, 0.2,
       0.95},
      {"gpu_matmul",
       [](hw::Efficiency& e) -> double& { return e.gpu_matmul; }, 0.15,
       0.85},
      {"cpu_attention_default",
       [](hw::Efficiency& e) -> double& { return e.cpu_attention_default; },
       0.01, 0.5},
      {"cpu_attention_tuned",
       [](hw::Efficiency& e) -> double& { return e.cpu_attention_tuned; },
       0.02, 0.7},
      {"task_overhead",
       [](hw::Efficiency& e) -> double& { return e.task_overhead; }, 1e-4,
       2e-2},
  };
}

double calibration_loss(const hw::Platform& platform,
                        const std::vector<Observation>& observations) {
  LMO_CHECK(!observations.empty());
  double loss = 0.0;
  for (const auto& obs : observations) {
    LMO_CHECK_GT(obs.measured_throughput, 0.0);
    const auto est = estimate(obs.spec, obs.workload, obs.policy, platform);
    if (!est.fits || est.throughput <= 0.0) {
      loss += kInfeasiblePenalty;
      continue;
    }
    const double err = std::log(est.throughput / obs.measured_throughput);
    loss += err * err;
  }
  return loss / static_cast<double>(observations.size());
}

CalibrationResult calibrate(const hw::Platform& initial,
                            const std::vector<Observation>& observations,
                            const std::vector<CalibrationKnob>& knobs,
                            const CalibrationOptions& options) {
  LMO_CHECK(!observations.empty());
  LMO_CHECK(!knobs.empty());
  LMO_CHECK_GE(options.grid_points, 3);

  CalibrationResult result;
  result.platform = initial;
  result.initial_loss = calibration_loss(initial, observations);
  double best_loss = result.initial_loss;

  // Per-knob bracket, shrunk around the incumbent every round.
  std::vector<std::pair<double, double>> brackets;
  brackets.reserve(knobs.size());
  for (const auto& knob : knobs) brackets.push_back({knob.lo, knob.hi});

  for (int round = 0; round < options.max_rounds; ++round) {
    const double round_start_loss = best_loss;
    for (std::size_t k = 0; k < knobs.size(); ++k) {
      const auto& knob = knobs[k];
      auto [lo, hi] = brackets[k];
      double best_value = knob.field(result.platform.eff);
      for (int g = 0; g < options.grid_points; ++g) {
        const double value =
            lo + (hi - lo) * static_cast<double>(g) /
                     static_cast<double>(options.grid_points - 1);
        hw::Platform candidate = result.platform;
        knob.field(candidate.eff) = value;
        const double loss = calibration_loss(candidate, observations);
        if (loss < best_loss) {
          best_loss = loss;
          best_value = value;
        }
      }
      knob.field(result.platform.eff) = best_value;
      // Shrink the bracket around the incumbent.
      const double half = (hi - lo) * options.shrink * 0.5;
      brackets[k] = {std::max(knob.lo, best_value - half),
                     std::min(knob.hi, best_value + half)};
    }
    ++result.rounds;
    if (round_start_loss - best_loss < options.tolerance) break;
  }

  result.final_loss = best_loss;
  result.fit_ratios.reserve(observations.size());
  for (const auto& obs : observations) {
    const auto est = estimate(obs.spec, obs.workload, obs.policy,
                              result.platform);
    result.fit_ratios.push_back(
        est.fits ? est.throughput / obs.measured_throughput : 0.0);
  }
  return result;
}

}  // namespace lmo::perfmodel
