#include "lmo/perfmodel/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "lmo/perfmodel/quant_model.hpp"
#include "lmo/util/check.hpp"

namespace lmo::perfmodel {
namespace {

using model::ModelSpec;
using model::Workload;

double roofline(double flops, double bytes, double flop_rate,
                double byte_rate) {
  return std::max(flops / flop_rate, bytes / byte_rate);
}

/// Per-layer launch/sync overhead for one decode step: Algorithm 1 issues
/// its task group once per batch in the block, then synchronizes.
double layer_overhead(const Workload& w, const hw::Platform& platform,
                      const Policy& policy) {
  // Uncontrolled threading pays extra scheduling/contention cost per task
  // group (paper §4.1: up to 40% variance from thread management alone).
  const double per_task = platform.eff.task_overhead *
                          (policy.parallelism_control ? 1.0 : 1.6);
  return per_task * static_cast<double>(w.num_batches);
}

/// The disk→CPU link, with EstimatorOptions::disk_gbps (a measured staging
/// bandwidth) overriding the platform's nominal figure when set.
hw::Link disk_link(const hw::Platform& platform,
                   const EstimatorOptions& options) {
  hw::Link link = platform.disk_to_cpu;
  if (options.disk_gbps > 0.0) link.bandwidth = options.disk_gbps * 1e9;
  return link;
}

}  // namespace

StepCosts step_costs(const ModelSpec& spec, const Workload& w,
                     const Policy& policy, const hw::Platform& platform,
                     std::int64_t t, const EstimatorOptions& options) {
  policy.validate();
  w.validate();
  StepCosts costs;

  const bool quant_terms = !options.flexgen_style;
  const double wc = 1.0 - policy.weights_on_gpu;  // fraction offloaded

  // ---- load_weight (Eq. 4): stream the offloaded fraction of the next
  // layer's weights, then dequantize on the GPU if they are compressed.
  // Disk-tier weights first cross disk→CPU (a separate, slower resource),
  // then ride the same H2D link.
  const double weight_stream_bytes =
      model::layer_weight_bytes(spec, policy.weight_bits) * wc;
  costs.load_weight = weight_stream_bytes / platform.h2d_bw();
  if (policy.weights_on_disk > 0.0) {
    const double disk_bytes =
        model::layer_weight_bytes(spec, policy.weight_bits) *
        policy.weights_on_disk;
    costs.load_weight_disk =
        disk_link(platform, options).transfer_seconds(disk_bytes);
  }
  if (quant_terms && policy.weights_quantized()) {
    const double dequant =
        dequan_wgt_seconds(spec, wc, policy.weight_bits, platform);
    costs.load_weight += dequant;
    costs.dequant_time += dequant;
  }

  // ---- KV-cache traffic: only exists when attention runs on the GPU; with
  // attention offloading the cache never crosses PCIe (paper Observation 1).
  const double cache_stream_fraction = 1.0 - policy.cache_on_gpu;
  if (!policy.attention_on_cpu) {
    if (cache_stream_fraction > 0.0) {
      costs.load_cache =
          model::kv_cache_bytes_at(spec, w, t, policy.kv_bits) *
              cache_stream_fraction / platform.h2d_bw() +
          (quant_terms ? platform.eff.cache_chunk_overhead *
                             static_cast<double>(w.num_batches)
                       : 0.0);
      costs.store_cache = model::new_kv_cache_bytes(spec, w, policy.kv_bits) *
                          cache_stream_fraction / platform.d2h_bw();
    }
    if (quant_terms && policy.kv_quantized()) {
      // A compressed cache — streamed or GPU-resident — must be expanded
      // before the fp16 attention kernels can read it (Eq. 6), and the new
      // token's KV re-compressed (Eq. 7).
      const double dequant = dequan_old_cache_seconds(
          spec, w, t, policy.kv_bits, /*on_cpu=*/false, platform);
      const double quant = quan_new_cache_seconds(
          spec, w, policy.kv_bits, /*on_cpu=*/false, platform);
      costs.load_cache += dequant;
      costs.store_cache += quant;
      costs.dequant_time += dequant;
      costs.quant_time += quant;
    }
  }

  // ---- activations: cross PCIe when attention is offloaded (CPU attention
  // output feeds the GPU MLP and vice versa) or when activations of waiting
  // batches are spilled to host memory (1 - hg).
  const double act_bytes = model::activation_bytes(spec, w, 16);
  const double act_fraction =
      policy.attention_on_cpu ? 1.0 : (1.0 - policy.activations_on_gpu);
  costs.load_activation = act_bytes * act_fraction / platform.h2d_bw();
  costs.store_activation = act_bytes * act_fraction / platform.d2h_bw();

  // ---- compute. The MLP and the attention projections (weight GEMMs)
  // always run on the GPU; only the cache-touching score/value part follows
  // the attention-placement policy.
  const double mlp_bytes_touched =
      static_cast<double>(spec.mlp_weights_per_layer()) * 2.0;
  costs.compute_gpu = roofline(model::mlp_decode_flops(spec, w),
                               mlp_bytes_touched, platform.gpu_matmul_flops(),
                               platform.gpu_mem_bw());
  const double proj_bytes =
      static_cast<double>(spec.attention_weights_per_layer()) * 2.0;
  costs.compute_gpu += roofline(model::attention_projection_flops(spec, w),
                                proj_bytes, platform.gpu_matmul_flops(),
                                platform.gpu_mem_bw());
  if (quant_terms && policy.resident_weights_compressed &&
      policy.weights_quantized()) {
    // ZeRO-style resident compression: every layer's resident weights are
    // expanded on the GPU before use.
    const double dequant = dequan_wgt_seconds(spec, policy.weights_on_gpu,
                                              policy.weight_bits, platform);
    costs.compute_gpu += dequant;
    costs.dequant_time += dequant;
  }

  const double attn_flops = model::attention_score_flops(spec, w, t);
  if (policy.attention_on_cpu) {
    // The scan always reads *expanded* (fp16-equivalent) data — CPU GEMMs
    // cannot consume packed 4-bit payloads — so compression does not shrink
    // the attention traffic (paper Observation 1: with attention offloading
    // quantization is pure overhead). Hybrid attention splits the scan:
    // the GPU covers its resident cache slice, the CPU the remainder, and
    // the partial softmaxes merge by renormalization (negligible cost).
    const double cpu_share =
        policy.hybrid_attention ? 1.0 - policy.cache_on_gpu : 1.0;
    const double kv_touched =
        model::attention_kv_bytes_touched(spec, w, t, 16) * cpu_share;
    const double attention_bw =
        options.flexgen_style
            ? platform.cpu.mem_bandwidth * platform.eff.cpu_attention_assumed
            : platform.cpu_attention_bw(policy.parallelism_control);
    costs.compute_cpu = roofline(attn_flops * cpu_share, kv_touched,
                                 platform.cpu_matmul_flops(), attention_bw);
    if (policy.hybrid_attention && policy.cache_on_gpu > 0.0) {
      const double gpu_share = policy.cache_on_gpu;
      costs.compute_gpu += roofline(
          attn_flops * gpu_share,
          model::attention_kv_bytes_touched(spec, w, t, 16) * gpu_share,
          platform.gpu_matmul_flops(), platform.gpu_mem_bw());
    }
    if (quant_terms && policy.kv_quantized()) {
      // The compressed host-resident cache must be expanded for the scan
      // and the new token's KV re-compressed — both on the CPU, contending
      // with the attention threads.
      const double dequant = dequan_old_cache_seconds(
          spec, w, t, policy.kv_bits, /*on_cpu=*/true, platform);
      const double quant = quan_new_cache_seconds(
          spec, w, policy.kv_bits, /*on_cpu=*/true, platform);
      costs.compute_cpu += dequant + quant;
      costs.dequant_time += dequant;
      costs.quant_time += quant;
    }
  } else {
    const double kv_touched =
        model::attention_kv_bytes_touched(spec, w, t, 16);
    costs.compute_gpu += roofline(attn_flops, kv_touched,
                                  platform.gpu_matmul_flops(),
                                  platform.gpu_mem_bw());
  }

  // ---- integrity verification (optional): every byte this step fetches
  // from host-side storage — the streamed weight shard and the at-rest KV
  // the attention scan reads — is re-checksummed on the CPU before use.
  if (options.verify_gbps > 0.0) {
    const double kv_at_rest =
        model::kv_cache_bytes_at(spec, w, t, policy.kv_bits);
    const double verified_bytes =
        weight_stream_bytes +
        kv_at_rest *
            (policy.attention_on_cpu ? 1.0 : cache_stream_fraction);
    costs.verify_time = verified_bytes / (options.verify_gbps * 1e9);
    costs.compute_cpu += costs.verify_time;
  }

  // ---- Eq. 2, resource-aware: tasks sharing a link/device serialize.
  const double h2d = costs.load_weight + costs.load_cache +
                     costs.load_activation;
  const double d2h = costs.store_cache + costs.store_activation;
  const double overhead =
      options.flexgen_style ? 0.0 : layer_overhead(w, platform, policy);
  costs.t_gen = std::max({h2d, d2h, costs.compute_gpu, costs.compute_cpu,
                          costs.load_weight_disk}) +
                overhead;
  return costs;
}

double gpu_resident_bytes(const ModelSpec& spec, const Workload& w,
                          const Policy& policy) {
  const int resident_bits =
      policy.resident_weights_compressed ? policy.weight_bits : 16;
  const double resident_weights =
      model::total_weight_bytes(spec, resident_bits) * policy.weights_on_gpu;
  const double resident_cache =
      model::peak_kv_cache_total_bytes(spec, w, policy.kv_bits) *
      policy.cache_on_gpu;
  const double resident_act =
      4.0 * model::activation_bytes(spec, w, 16) * policy.activations_on_gpu;

  // Working set: double-buffered streamed layer weights (held in compute
  // precision after dequantization) and, when attention runs on the GPU,
  // one layer's full KV cache at its final length plus score buffers.
  double working = 2.0 * model::layer_weight_bytes(spec, 16) *
                   (1.0 - policy.weights_on_gpu > 0.0 ? 1.0 : 0.0);
  working = std::max(working, 2.0 * model::layer_weight_bytes(spec, 16));
  if (!policy.attention_on_cpu) {
    Workload end = w;
    working += model::kv_cache_bytes_at(spec, end, w.gen_len - 1, 16) +
               2.0 * model::activation_bytes(spec, w, 16);
  }
  return resident_weights + resident_cache + resident_act + working;
}

double disk_resident_bytes(const ModelSpec& spec, const Workload& w,
                           const Policy& policy) {
  (void)w;
  return model::total_weight_bytes(spec, policy.weight_bits) *
         policy.weights_on_disk;
}

double cpu_resident_bytes(const ModelSpec& spec, const Workload& w,
                          const Policy& policy) {
  const double weights =
      model::total_weight_bytes(spec, policy.weight_bits) *
      (1.0 - policy.weights_on_gpu - policy.weights_on_disk);
  const double cache =
      model::peak_kv_cache_total_bytes(spec, w, policy.kv_bits) *
      (1.0 - policy.cache_on_gpu);
  const double act = 4.0 * model::activation_bytes(spec, w, 16) *
                     (1.0 - policy.activations_on_gpu);
  // Pinned staging buffers for transfers.
  const double staging = 2.0 * model::layer_weight_bytes(spec, 16);
  return weights + cache + act + staging;
}

Estimate estimate(const ModelSpec& spec, const Workload& w,
                  const Policy& policy, const hw::Platform& platform,
                  const EstimatorOptions& options) {
  policy.validate();
  w.validate();
  spec.validate();

  Estimate est;
  est.gpu_bytes_needed = gpu_resident_bytes(spec, w, policy);
  est.cpu_bytes_needed = cpu_resident_bytes(spec, w, policy);
  est.footprint = model::inference_footprint(spec, w, policy.weight_bits,
                                             policy.kv_bits);
  if (est.gpu_bytes_needed > platform.gpu.mem_capacity) {
    est.infeasible_reason = "exceeds GPU memory capacity";
    return est;
  }
  if (est.cpu_bytes_needed > platform.cpu.mem_capacity) {
    est.infeasible_reason = "exceeds CPU memory capacity";
    return est;
  }
  if (disk_resident_bytes(spec, w, policy) > platform.disk.mem_capacity) {
    est.infeasible_reason = "exceeds disk capacity";
    return est;
  }
  est.fits = true;

  const double l = static_cast<double>(spec.num_layers);
  const bool quant_terms = !options.flexgen_style;

  // ---- T_init (Eq. 3): weights disk→CPU/GPU (the disk-resident share
  // stays put), plus one-time CPU quantization of the offloaded share.
  est.t_init = disk_link(platform, options).transfer_seconds(
      model::total_weight_bytes(spec, 16) * (1.0 - policy.weights_on_disk));
  if (quant_terms && policy.weights_quantized()) {
    est.t_init += quan_pf_wgt_seconds(spec, 1.0 - policy.weights_on_gpu,
                                      platform) *
                  l;
  }

  // ---- T_pf (Eq. 5): prefill one layer = max(weight stream, compute,
  // prefilled-KV store), plus prefill KV quantization.
  {
    const double weight_stream =
        model::layer_weight_bytes(spec, policy.weight_bits) *
        (1.0 - policy.weights_on_gpu) / platform.h2d_bw();
    const double disk_stream = disk_link(platform, options).transfer_seconds(
        model::layer_weight_bytes(spec, policy.weight_bits) *
        policy.weights_on_disk);
    const double compute = model::layer_prefill_flops(spec, w) /
                           platform.gpu_matmul_flops();
    double kv_store = 0.0;
    const double kv_off_fraction = 1.0 - policy.cache_on_gpu;
    // Prefilled KV leaves the GPU whenever the cache lives (partly) on the
    // CPU — which is always the case with attention offloading.
    const double store_fraction =
        policy.attention_on_cpu ? 1.0 : kv_off_fraction;
    kv_store = model::pf_kv_cache_bytes(spec, w, policy.kv_bits) *
               store_fraction / platform.d2h_bw();
    double t_pf = std::max({weight_stream, disk_stream, compute, kv_store});
    if (quant_terms && policy.kv_quantized()) {
      const double quant = quan_pf_cache_seconds(spec, w, policy.kv_bits,
                                                 platform);
      t_pf += quant;
      est.total_quant_time += quant * l;
    }
    if (!options.flexgen_style) {
      t_pf += layer_overhead(w, platform, policy);
    }
    est.t_prefill = t_pf * l;
  }

  // ---- decode: Σ_t T_gen(t) · l (Eq. 1 with per-step exactness).
  const std::int64_t steps = w.gen_len - 1;
  if (options.use_average_kv) {
    const std::int64_t mid = w.gen_len / 2;
    const StepCosts mid_costs = step_costs(spec, w, policy, platform, mid,
                                           options);
    est.t_decode = mid_costs.t_gen * static_cast<double>(steps) * l;
    est.mid_step = mid_costs;
    est.total_quant_time +=
        mid_costs.quant_time * static_cast<double>(steps) * l;
    est.total_dequant_time +=
        mid_costs.dequant_time * static_cast<double>(steps) * l;
    est.total_load_weight +=
        mid_costs.load_weight * static_cast<double>(steps) * l;
    est.total_load_cache +=
        mid_costs.load_cache * static_cast<double>(steps) * l;
    est.total_store_cache +=
        mid_costs.store_cache * static_cast<double>(steps) * l;
    est.total_compute += (mid_costs.compute_gpu + mid_costs.compute_cpu) *
                         static_cast<double>(steps) * l;
    est.total_verify_time +=
        mid_costs.verify_time * static_cast<double>(steps) * l;
  } else {
    for (std::int64_t t = 1; t < w.gen_len; ++t) {
      const StepCosts sc = step_costs(spec, w, policy, platform, t, options);
      est.t_decode += sc.t_gen * l;
      est.total_quant_time += sc.quant_time * l;
      est.total_dequant_time += sc.dequant_time * l;
      est.total_load_weight += sc.load_weight * l;
      est.total_load_cache += sc.load_cache * l;
      est.total_store_cache += sc.store_cache * l;
      est.total_compute += (sc.compute_gpu + sc.compute_cpu) * l;
      est.total_verify_time += sc.verify_time * l;
      if (t == w.gen_len / 2) est.mid_step = sc;
    }
    if (w.gen_len == 1) {
      est.mid_step = step_costs(spec, w, policy, platform, 0, options);
    }
  }

  est.total_time = est.t_prefill + est.t_decode;
  LMO_CHECK_GT(est.total_time, 0.0);
  est.throughput =
      static_cast<double>(w.total_tokens()) / est.total_time;
  return est;
}

}  // namespace lmo::perfmodel
