// An execution policy: everything the offloading runtime must decide before
// running. This is the decision space the paper's models navigate —
// placement percentages (FlexGen's wg/cg/hg), attention offloading, and the
// per-tensor quantization choices LM-Offload adds.
#pragma once

#include <string>

namespace lmo::perfmodel {

struct Policy {
  // Placement fractions in [0, 1]: share of each tensor class resident in
  // GPU memory ("wg", "cg", "hg" columns of paper Table 3, as fractions).
  double weights_on_gpu = 0.0;      ///< wg
  double cache_on_gpu = 0.0;        ///< cg
  double activations_on_gpu = 0.0;  ///< hg

  /// Share of weights spilled past host memory onto the disk tier (FlexGen
  /// supports a three-tier hierarchy; the paper's T_init loads weights from
  /// disk). The CPU share is the remainder 1 - wg - weights_on_disk.
  double weights_on_disk = 0.0;

  /// Attention offloading: compute decode attention on the CPU next to the
  /// KV cache (true) or on the GPU, streaming the cache in (false).
  bool attention_on_cpu = true;

  /// Hybrid attention (FlexGen's fractional-cache design): with
  /// attention_on_cpu and cache_on_gpu > 0, the GPU computes scores over
  /// its resident cache slice while the CPU handles the host-resident
  /// remainder; the two partial softmaxes merge by renormalization. Splits
  /// the scan across both memory systems instead of moving bytes.
  bool hybrid_attention = false;

  /// Storage bit width of offloaded tensors: 16 = no quantization, 8/4 =
  /// group-wise quantized (Alg. 2).
  int weight_bits = 16;
  int kv_bits = 16;

  /// Keep even GPU-resident weights compressed (ZeRO-Inference's scheme:
  /// 4-bit weights live on the GPU and are dequantized on the fly every
  /// layer). FlexGen/LM-Offload store resident weights in compute precision
  /// and only compress the *streamed* fraction.
  bool resident_weights_compressed = false;

  /// Thread-level parallelism control (paper §4 / Algorithm 3) on or off.
  bool parallelism_control = false;

  bool weights_quantized() const { return weight_bits < 16; }
  bool kv_quantized() const { return kv_bits < 16; }

  /// Throws CheckError if fractions are out of range or bits invalid.
  void validate() const;

  /// "wg=55% cg=0% hg=0% attn=cpu w16 kv16 ctl=off"
  std::string to_string() const;

  bool operator==(const Policy& other) const;
};

}  // namespace lmo::perfmodel
