#include "lmo/util/units.hpp"

#include <cmath>
#include <cstdio>

namespace lmo::util {
namespace {

std::string printf_str(const char* fmt, double v, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v, suffix);
  return buf;
}

}  // namespace

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_bytes(double bytes) {
  const double abs = std::fabs(bytes);
  if (abs >= kTB) return printf_str("%.2f %s", bytes / kTB, "TB");
  if (abs >= kGB) return printf_str("%.2f %s", bytes / kGB, "GB");
  if (abs >= kMB) return printf_str("%.2f %s", bytes / kMB, "MB");
  if (abs >= kKB) return printf_str("%.2f %s", bytes / kKB, "KB");
  return printf_str("%.0f %s", bytes, "B");
}

std::string format_seconds(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return printf_str("%.3f %s", seconds, "s");
  if (abs >= kMilli) return printf_str("%.3f %s", seconds / kMilli, "ms");
  return printf_str("%.1f %s", seconds / kMicro, "us");
}

std::string format_bandwidth(double bytes_per_second) {
  return format_bytes(bytes_per_second) + "/s";
}

}  // namespace lmo::util
