#include "lmo/util/checksum.hpp"

namespace lmo::util {
namespace {

/// Table-driven CRC-32, generated once for the reflected IEEE polynomial.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  const std::uint32_t* table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::byte b : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(b)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t crc32(const std::vector<std::byte>& data) {
  return crc32(std::span<const std::byte>(data.data(), data.size()));
}

std::uint32_t crc32(std::span<const float> data) {
  return crc32(std::as_bytes(data));
}

}  // namespace lmo::util
