// Shared CRC-32 used by every integrity surface in the tree.
//
// One implementation serves both the checkpoint envelope (lmo/ckpt) and the
// offload-path integrity layer (lmo/integrity): the reflected IEEE 802.3
// polynomial with 0xffffffff init/xorout — the zlib convention — so
// fingerprints are comparable across subsystems and checkpoint files written
// before the extraction verify unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace lmo::util {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) over `data`.
std::uint32_t crc32(std::span<const std::byte> data);
std::uint32_t crc32(const std::vector<std::byte>& data);

/// Convenience overload for float payloads (KV rows, prefix blocks):
/// fingerprints the IEEE bit patterns in native layout.
std::uint32_t crc32(std::span<const float> data);

}  // namespace lmo::util
