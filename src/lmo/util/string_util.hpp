#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lmo::util {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view s);

/// Case-sensitive prefix/suffix tests (thin wrappers, self-documenting).
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join elements with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Left/right pad with spaces to at least `width` characters.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace lmo::util
