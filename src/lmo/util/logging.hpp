// Minimal leveled logger. Thread-safe, writes to stderr by default; tests
// can redirect the sink. Intentionally tiny: the library's main outputs are
// structured tables, not log spew.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace lmo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* to_string(LogLevel level);

/// Global log configuration. Defaults: level=kWarn, sink=stderr.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Replace the output sink (e.g. capture in tests). Pass nullptr to
  /// restore stderr.
  void set_sink(std::function<void(const std::string&)> sink);

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace lmo::util

#define LMO_LOG(lmo_level_)                                              \
  if (static_cast<int>(lmo_level_) <                                     \
      static_cast<int>(::lmo::util::Logger::instance().level())) {       \
  } else                                                                 \
    ::lmo::util::detail::LogLine(lmo_level_, __FILE__, __LINE__)

#define LMO_DEBUG LMO_LOG(::lmo::util::LogLevel::kDebug)
#define LMO_INFO LMO_LOG(::lmo::util::LogLevel::kInfo)
#define LMO_WARN LMO_LOG(::lmo::util::LogLevel::kWarn)
#define LMO_ERROR LMO_LOG(::lmo::util::LogLevel::kError)
