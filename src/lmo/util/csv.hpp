// CSV writer for benchmark outputs (machine-readable companions to the
// ASCII tables). Handles RFC-4180 quoting.
#pragma once

#include <string>
#include <vector>

namespace lmo::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Serialize header + rows; fields containing comma/quote/newline are
  /// quoted with embedded quotes doubled.
  std::string to_string() const;

  /// Write to a file; throws CheckError on I/O failure.
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180 CSV reader: header + rows, quoted fields with doubled quotes,
/// embedded commas and newlines. The inverse of CsvWriter.
class CsvReader {
 public:
  /// Parse from text; throws CheckError on ragged rows or dangling quotes.
  static CsvReader parse(const std::string& text);
  /// Read and parse a file.
  static CsvReader load(const std::string& path);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const;

  /// Column index by header name; throws when absent.
  std::size_t column(const std::string& name) const;
  /// Field by (row, column-name).
  const std::string& at(std::size_t row, const std::string& name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lmo::util
