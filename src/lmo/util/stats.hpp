// Statistics accumulators used by benchmarks and the profiling database:
// Welford running mean/variance, min/max, and exact percentiles over a
// retained sample vector.
#pragma once

#include <cstddef>
#include <vector>

namespace lmo::util {

/// Online mean/variance (Welford) plus min/max. O(1) memory.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 when n < 2
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; supports exact quantiles. Used where sample counts
/// are small (per-op profiles, bench repetitions).
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double median() const { return quantile(0.5); }
  /// Linear-interpolated quantile, q in [0, 1]. Requires non-empty set.
  double quantile(double q) const;
  double min() const;
  double max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace lmo::util
