// Lightweight runtime-check macros. These are *always on* (they guard API
// contracts, not internal hot loops) and throw lmo::util::CheckError so that
// tests can assert on violations instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lmo::util {

/// Thrown when an LMO_CHECK* macro fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

template <class A, class B>
[[noreturn]] void check_cmp_failed(const char* expr, const char* file,
                                   int line, const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (lhs=" << a << ", rhs=" << b << ")";
  check_failed(os.str().c_str(), file, line, "");
}

}  // namespace detail
}  // namespace lmo::util

#define LMO_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::lmo::util::detail::check_failed(#cond, __FILE__, __LINE__, "");   \
  } while (0)

#define LMO_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::lmo::util::detail::check_failed(#cond, __FILE__, __LINE__, msg);  \
  } while (0)

#define LMO_CHECK_OP(op, a, b)                                            \
  do {                                                                    \
    if (!((a)op(b)))                                                      \
      ::lmo::util::detail::check_cmp_failed(#a " " #op " " #b, __FILE__,  \
                                            __LINE__, (a), (b));          \
  } while (0)

#define LMO_CHECK_EQ(a, b) LMO_CHECK_OP(==, a, b)
#define LMO_CHECK_NE(a, b) LMO_CHECK_OP(!=, a, b)
#define LMO_CHECK_LT(a, b) LMO_CHECK_OP(<, a, b)
#define LMO_CHECK_LE(a, b) LMO_CHECK_OP(<=, a, b)
#define LMO_CHECK_GT(a, b) LMO_CHECK_OP(>, a, b)
#define LMO_CHECK_GE(a, b) LMO_CHECK_OP(>=, a, b)

#define LMO_UNREACHABLE(msg) \
  ::lmo::util::detail::check_failed("unreachable", __FILE__, __LINE__, msg)
