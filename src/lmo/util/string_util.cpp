#include "lmo/util/string_util.hpp"

#include <cctype>

namespace lmo::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace lmo::util
