// ASCII table printer used by every benchmark binary to emit the paper's
// tables/figures as aligned rows. Columns are right-aligned for numbers and
// left-aligned for text (decided per cell by content).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lmo::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int digits = 2);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& header() const { return header_; }

  /// Render with column separators and a header rule.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lmo::util
