#include "lmo/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "lmo/util/check.hpp"
#include "lmo/util/string_util.hpp"
#include "lmo/util/units.hpp"

namespace lmo::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LMO_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  LMO_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int digits) {
  return format_fixed(v, digits);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = align_right && looks_numeric(row[c]);
      os << ' '
         << (right ? pad_left(row[c], widths[c]) : pad_right(row[c], widths[c]))
         << " |";
    }
    os << '\n';
  };

  emit_row(header_, /*align_right=*/false);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, /*align_right=*/true);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace lmo::util
