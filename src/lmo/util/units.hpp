// Byte/time unit helpers and human-readable formatting. All simulator and
// performance-model code works in SI base units: bytes, seconds, FLOPs.
#pragma once

#include <cstdint>
#include <string>

namespace lmo::util {

inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;

inline constexpr double kGFLOP = 1e9;
inline constexpr double kTFLOP = 1e12;

/// "12.34 GB", "567.8 MB", ... (SI, matches the paper's units).
std::string format_bytes(double bytes);

/// "1.23 s", "45.6 ms", "789 us".
std::string format_seconds(double seconds);

/// "123.4 GB/s".
std::string format_bandwidth(double bytes_per_second);

/// Fixed-precision double → string (printf "%.*f").
std::string format_fixed(double value, int digits);

}  // namespace lmo::util
