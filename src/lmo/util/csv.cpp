#include "lmo/util/csv.hpp"

#include <fstream>
#include <sstream>

#include "lmo/util/check.hpp"

namespace lmo::util {
namespace {

std::string escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  LMO_CHECK(!header_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  LMO_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {

/// Split CSV text into records of fields, honouring quotes.
std::vector<std::vector<std::string>> tokenize_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        LMO_CHECK_MSG(!field_started || field.empty(),
                      "quote inside unquoted CSV field");
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
    }
  }
  LMO_CHECK_MSG(!in_quotes, "unterminated quote in CSV input");
  if (field_started || !field.empty() || !record.empty()) end_record();
  return records;
}

}  // namespace

CsvReader CsvReader::parse(const std::string& text) {
  auto records = tokenize_csv(text);
  LMO_CHECK_MSG(!records.empty(), "empty CSV input");
  CsvReader reader;
  reader.header_ = std::move(records.front());
  for (std::size_t i = 1; i < records.size(); ++i) {
    LMO_CHECK_MSG(records[i].size() == reader.header_.size(),
                  "CSV row " + std::to_string(i) + " has " +
                      std::to_string(records[i].size()) + " fields, header "
                      "has " + std::to_string(reader.header_.size()));
    reader.rows_.push_back(std::move(records[i]));
  }
  return reader;
}

CsvReader CsvReader::load(const std::string& path) {
  std::ifstream in(path);
  LMO_CHECK_MSG(in.good(), "cannot open CSV input file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

const std::vector<std::string>& CsvReader::row(std::size_t i) const {
  LMO_CHECK_LT(i, rows_.size());
  return rows_[i];
}

std::size_t CsvReader::column(const std::string& name) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (header_[c] == name) return c;
  }
  LMO_CHECK_MSG(false, "CSV has no column named: " + name);
  LMO_UNREACHABLE("unreachable");
}

const std::string& CsvReader::at(std::size_t row,
                                 const std::string& name) const {
  return this->row(row)[column(name)];
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  LMO_CHECK_MSG(out.good(), "cannot open CSV output file: " + path);
  out << to_string();
  LMO_CHECK_MSG(out.good(), "write failed for CSV output file: " + path);
}

}  // namespace lmo::util
