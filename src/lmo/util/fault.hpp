// Deterministic, seeded fault-injection framework.
//
// Instrumented code declares *injection sites* by name (e.g.
// "offload.fetch.transfer") and asks the process-wide injector whether the
// current operation should fail, stall, or be denied an allocation. With no
// active injection every query is a cheap atomic load returning "no fault",
// so production paths are behaviorally unchanged.
//
// Tests and the chaos tooling arm sites through ScopedFaultInjection, which
// enables the injector for its lifetime and disarms it on scope exit so
// suites stay hermetic. Each site draws from its own xoshiro256** stream
// seeded from (global seed, site name), so one site's outcome sequence is
// independent of how calls to *other* sites interleave — the basis of the
// chaos determinism guarantee.
//
// Every fired fault is appended to a trigger log; recovery code is expected
// to account for faults exactly (stats == log), which the robustness tests
// assert.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "lmo/util/rng.hpp"

namespace lmo::util {

/// Per-site fault configuration. All fields compose: an operation may both
/// stall (latency spike) and fail (transient error).
struct FaultSpec {
  /// Probability that an operation at this site raises a transient failure.
  double fail_probability = 0.0;
  /// Cap on injected transient failures; -1 = unlimited.
  std::int64_t max_failures = -1;

  /// Probability that an operation stalls for `latency_seconds`.
  double latency_probability = 0.0;
  /// Operation-index window [window_begin, window_end) during which every
  /// operation stalls — a deterministic bandwidth-degradation interval.
  /// Disabled when window_end <= window_begin.
  std::int64_t window_begin = -1;
  std::int64_t window_end = -1;
  /// Injected stall duration when a latency spike fires.
  double latency_seconds = 0.0;

  /// The next `alloc_failures` allocation checks at this site are denied.
  std::int64_t alloc_failures = 0;

  /// Probability that an operation at this site silently flips one bit of
  /// the data it moves (see FaultInjector::corrupt_bit). Models hardware
  /// bit rot on the offload path; detected only by the integrity layer.
  double flip_probability = 0.0;

  /// Probability that a block write at this site is torn: only a prefix of
  /// the block reaches stable storage (power loss / volatile write cache).
  /// Detected by the store's write-verify read-back, never surfaced as an
  /// error by the device itself.
  double torn_write_probability = 0.0;
  /// Probability that a block read at this site fails with a device-level
  /// I/O error (media error, cable reset). Honors max_failures like
  /// transient transfer faults.
  double read_error_probability = 0.0;

  /// Kill the process (SIGKILL by default — see set_crash_handler) at the
  /// `crash_at_op`-th maybe_crash() check at this site; -1 = never. Crash
  /// checks keep their own counter, separate from the shared op counter,
  /// and consume zero draws: arming a crash point cannot shift any other
  /// fault class's schedule, so a killed-and-recovered run replays the
  /// exact chaos sequence of an uninterrupted one.
  std::int64_t crash_at_op = -1;

  void validate() const;
};

enum class FaultKind {
  kTransient,
  kLatency,
  kAllocFailure,
  kBitFlip,
  kTornWrite,
  kReadError,
  kCrashPoint,
};

const char* to_string(FaultKind kind);

/// One fired fault, in global firing order.
struct FaultEvent {
  std::string site;
  FaultKind kind = FaultKind::kTransient;
  std::uint64_t site_op = 0;  ///< per-site operation index that fired
};

/// Resumable position of one injection site's deterministic schedule:
/// the operation counters plus the number of RNG draws consumed. Draws are
/// tracked separately from ops — an op only consumes a draw when the armed
/// spec actually needs randomness — so replaying exactly `draws` uniforms
/// on a freshly re-seeded stream lands the site on the precise next
/// outcome. Persisted in checkpoints (see lmo/ckpt/) so chaos schedules
/// continue identically across a kill-resume boundary.
struct FaultSiteState {
  std::string site;
  std::int64_t ops = 0;
  std::int64_t failures = 0;
  std::int64_t allocs_denied = 0;
  std::uint64_t draws = 0;  ///< rng.uniform() calls consumed so far
};

class FaultInjector {
 public:
  /// Process-wide injector consulted by instrumented code.
  static FaultInjector& instance();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Should the current operation at `site` raise a transient failure?
  /// Counts one operation against the site; logs the event when it fires.
  bool should_fail(const std::string& site);

  /// Seconds the current operation at `site` should stall (0 = none).
  /// Call immediately *before* should_fail for the same operation: the
  /// delay is attributed to the op index the next should_fail consumes,
  /// which is also how window_begin/window_end are interpreted.
  double injected_delay(const std::string& site);

  /// Should the current allocation at `site` be denied?
  bool should_fail_alloc(const std::string& site);

  /// Should the current operation at `site` silently corrupt the payload it
  /// moves? Counts one operation against the site. Returns the index of the
  /// bit to flip in [0, num_bits), or -1 for "no flip". Consumes zero draws
  /// when the armed spec has flip_probability == 0 (or the site is unarmed),
  /// so arming flips never perturbs a site's other outcome sequences and
  /// existing chaos schedules stay byte-identical.
  std::int64_t corrupt_bit(const std::string& site, std::uint64_t num_bits);

  /// Should the current block write at `site` be torn (a prefix persisted,
  /// the tail lost)? Counts one operation against the site. Consumes zero
  /// draws when torn_write_probability == 0 so arming the I/O fault class
  /// never perturbs a site's other outcome sequences.
  bool should_tear_write(const std::string& site);

  /// Should the current block read at `site` fail with a device I/O error?
  /// Counts one operation against the site; honors max_failures (shared
  /// with the transient budget) so retry loops provably terminate. Consumes
  /// zero draws when read_error_probability == 0.
  bool should_fail_read(const std::string& site);

  /// Crash-point check: when the armed spec's crash_at_op equals this
  /// site's crash-check index, invoke the crash handler (default: SIGKILL
  /// the process — the real thing, not an exception). Counts against a
  /// dedicated crash-check counter, never the shared op counter, and
  /// consumes zero draws. The event is logged before the handler runs so
  /// an in-process (test) handler can observe it.
  void maybe_crash(const std::string& site);

  /// Replace the crash action for tests that cannot die (throws instead of
  /// kill, say). Cleared on disable(); pass nullptr to restore SIGKILL.
  void set_crash_handler(std::function<void(const std::string&)> handler);

  /// Trigger log (copy; ordered by firing time).
  std::vector<FaultEvent> events() const;
  /// Number of logged events at `site` of `kind`.
  std::uint64_t count(const std::string& site, FaultKind kind) const;

  /// Snapshot of every armed site's schedule position (empty when
  /// disabled), in site-name order.
  std::vector<FaultSiteState> site_states() const;
  /// Re-arm `state.site`'s schedule position: re-seeds the site stream
  /// from (seed, site name) and fast-forwards exactly `state.draws`
  /// uniforms, then restores the operation counters. The site must be
  /// armed (a spec installed) on an enabled injector; sites present in a
  /// checkpoint but not re-armed are the caller's choice to skip.
  void restore_site_state(const FaultSiteState& state);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  friend class ScopedFaultInjection;

  FaultInjector() = default;

  void enable(std::uint64_t seed);
  void disable();
  void arm(const std::string& site, const FaultSpec& spec);

  struct Site {
    FaultSpec spec;
    Xoshiro256 rng;
    std::int64_t ops = 0;       ///< operations observed (should_fail calls)
    std::int64_t failures = 0;  ///< transient failures injected
    std::int64_t allocs_denied = 0;
    std::uint64_t draws = 0;    ///< rng.uniform() calls consumed
    /// maybe_crash() checks observed. Deliberately NOT part of
    /// FaultSiteState: the recovered process re-arms crash points fresh
    /// (or not at all) — replaying a crash schedule would just die again.
    std::int64_t crash_checks = 0;

    /// Every consumption goes through here so `draws` is exact.
    double draw() {
      ++draws;
      return rng.uniform();
    }
  };

  Site* find_site_locked(const std::string& site);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::map<std::string, Site> sites_;
  std::vector<FaultEvent> events_;
  std::function<void(const std::string&)> crash_handler_;
};

/// RAII enablement: arms sites on a freshly-seeded injector and disarms
/// everything on destruction, so tests never leak fault state.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(std::uint64_t seed);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  /// Install `spec` at `site` (replaces any earlier spec for the site).
  void arm(const std::string& site, const FaultSpec& spec);

  std::vector<FaultEvent> events() const {
    return FaultInjector::instance().events();
  }
  std::uint64_t count(const std::string& site, FaultKind kind) const {
    return FaultInjector::instance().count(site, kind);
  }
  std::vector<FaultSiteState> site_states() const {
    return FaultInjector::instance().site_states();
  }
  void restore_site_state(const FaultSiteState& state) {
    FaultInjector::instance().restore_site_state(state);
  }
  void set_crash_handler(std::function<void(const std::string&)> handler) {
    FaultInjector::instance().set_crash_handler(std::move(handler));
  }
};

}  // namespace lmo::util
