#include "lmo/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "lmo/telemetry/percentile.hpp"
#include "lmo/util/check.hpp"

namespace lmo::util {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat(); }

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStat::max() const { return count_ == 0 ? 0.0 : max_; }

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  LMO_CHECK(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  // Non-empty stays a contract here (callers get a throw, not NaN); the
  // math itself lives in the one shared percentile implementation.
  LMO_CHECK(!samples_.empty());
  ensure_sorted();
  return telemetry::percentile_sorted(std::span<const double>(samples_), q);
}

double SampleSet::min() const {
  LMO_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  LMO_CHECK(!samples_.empty());
  ensure_sorted();
  return samples_.back();
}

}  // namespace lmo::util
