#include "lmo/util/fault.hpp"

#include <csignal>
#include <unistd.h>

#include "lmo/util/check.hpp"

namespace lmo::util {
namespace {

/// FNV-1a, to derive a per-site seed from the global seed and site name.
std::uint64_t hash_name(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void FaultSpec::validate() const {
  LMO_CHECK_GE(fail_probability, 0.0);
  LMO_CHECK_LE(fail_probability, 1.0);
  LMO_CHECK_GE(latency_probability, 0.0);
  LMO_CHECK_LE(latency_probability, 1.0);
  LMO_CHECK_GE(latency_seconds, 0.0);
  LMO_CHECK_GE(max_failures, -1);
  LMO_CHECK_GE(alloc_failures, 0);
  LMO_CHECK_GE(flip_probability, 0.0);
  LMO_CHECK_LE(flip_probability, 1.0);
  LMO_CHECK_GE(torn_write_probability, 0.0);
  LMO_CHECK_LE(torn_write_probability, 1.0);
  LMO_CHECK_GE(read_error_probability, 0.0);
  LMO_CHECK_LE(read_error_probability, 1.0);
  LMO_CHECK_GE(crash_at_op, -1);
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kAllocFailure:
      return "alloc-failure";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kReadError:
      return "read-error";
    case FaultKind::kCrashPoint:
      return "crash-point";
  }
  LMO_UNREACHABLE("bad FaultKind");
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::enable(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_MSG(!enabled_.load(), "fault injection is already enabled "
                                  "(nested ScopedFaultInjection?)");
  seed_ = seed;
  sites_.clear();
  events_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disable() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  sites_.clear();
  events_.clear();
  crash_handler_ = nullptr;
}

void FaultInjector::arm(const std::string& site, const FaultSpec& spec) {
  spec.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_MSG(enabled_.load(), "arm() requires an enabled injector");
  Site state;
  state.spec = spec;
  // Independent stream per (seed, site): interleavings of *other* sites
  // cannot shift this site's outcome sequence.
  state.rng = Xoshiro256(seed_ ^ hash_name(site));
  sites_[site] = std::move(state);
}

FaultInjector::Site* FaultInjector::find_site_locked(const std::string& site) {
  auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second;
}

bool FaultInjector::should_fail(const std::string& site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr) return false;
  const std::int64_t op = s->ops++;
  if (s->spec.fail_probability <= 0.0) return false;
  if (s->spec.max_failures >= 0 && s->failures >= s->spec.max_failures) {
    return false;
  }
  if (s->draw() >= s->spec.fail_probability) return false;
  ++s->failures;
  events_.push_back(FaultEvent{site, FaultKind::kTransient,
                               static_cast<std::uint64_t>(op)});
  return true;
}

double FaultInjector::injected_delay(const std::string& site) {
  if (!enabled()) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr || s->spec.latency_seconds <= 0.0) return 0.0;
  // The op index of the operation this delay belongs to is the *next*
  // should_fail() call; injected_delay must precede it (see header).
  const std::int64_t op = s->ops;
  bool spike = s->spec.window_end > s->spec.window_begin &&
               op >= s->spec.window_begin && op < s->spec.window_end;
  if (!spike && s->spec.latency_probability > 0.0) {
    spike = s->draw() < s->spec.latency_probability;
  }
  if (!spike) return 0.0;
  events_.push_back(FaultEvent{site, FaultKind::kLatency,
                               static_cast<std::uint64_t>(op)});
  return s->spec.latency_seconds;
}

bool FaultInjector::should_fail_alloc(const std::string& site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr || s->allocs_denied >= s->spec.alloc_failures) {
    return false;
  }
  const std::int64_t op = s->allocs_denied++;
  events_.push_back(FaultEvent{site, FaultKind::kAllocFailure,
                               static_cast<std::uint64_t>(op)});
  return true;
}

std::int64_t FaultInjector::corrupt_bit(const std::string& site,
                                        std::uint64_t num_bits) {
  if (!enabled() || num_bits == 0) return -1;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr) return -1;
  const std::int64_t op = s->ops++;
  if (s->spec.flip_probability <= 0.0) return -1;
  if (s->draw() >= s->spec.flip_probability) return -1;
  // Second draw picks the victim bit, consumed only when the flip fires so
  // a non-firing schedule matches a flip-free one draw-for-draw.
  const auto bit = static_cast<std::uint64_t>(
      s->draw() * static_cast<double>(num_bits));
  events_.push_back(FaultEvent{site, FaultKind::kBitFlip,
                               static_cast<std::uint64_t>(op)});
  return static_cast<std::int64_t>(bit >= num_bits ? num_bits - 1 : bit);
}

bool FaultInjector::should_tear_write(const std::string& site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr) return false;
  const std::int64_t op = s->ops++;
  if (s->spec.torn_write_probability <= 0.0) return false;
  if (s->draw() >= s->spec.torn_write_probability) return false;
  events_.push_back(FaultEvent{site, FaultKind::kTornWrite,
                               static_cast<std::uint64_t>(op)});
  return true;
}

bool FaultInjector::should_fail_read(const std::string& site) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  Site* s = find_site_locked(site);
  if (s == nullptr) return false;
  const std::int64_t op = s->ops++;
  if (s->spec.read_error_probability <= 0.0) return false;
  if (s->spec.max_failures >= 0 && s->failures >= s->spec.max_failures) {
    return false;
  }
  if (s->draw() >= s->spec.read_error_probability) return false;
  ++s->failures;
  events_.push_back(FaultEvent{site, FaultKind::kReadError,
                               static_cast<std::uint64_t>(op)});
  return true;
}

void FaultInjector::maybe_crash(const std::string& site) {
  if (!enabled()) return;
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Site* s = find_site_locked(site);
    if (s == nullptr || s->spec.crash_at_op < 0) return;
    const std::int64_t check = s->crash_checks++;
    if (check != s->spec.crash_at_op) return;
    events_.push_back(FaultEvent{site, FaultKind::kCrashPoint,
                                 static_cast<std::uint64_t>(check)});
    handler = crash_handler_;
  }
  // Run the crash action outside the lock: a test handler that throws (or
  // longjmps) must not leave the injector mutex held.
  if (handler) {
    handler(site);
    return;
  }
  // The genuine article. SIGKILL cannot be caught or cleaned up after —
  // exactly the discipline the crash-recovery path is designed for.
  ::kill(::getpid(), SIGKILL);
}

void FaultInjector::set_crash_handler(
    std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  crash_handler_ = std::move(handler);
}

std::vector<FaultEvent> FaultInjector::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::vector<FaultSiteState> FaultInjector::site_states() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultSiteState> states;
  states.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    states.push_back(FaultSiteState{name, site.ops, site.failures,
                                    site.allocs_denied, site.draws});
  }
  return states;
}

void FaultInjector::restore_site_state(const FaultSiteState& state) {
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_MSG(enabled_.load(),
                "restore_site_state() requires an enabled injector");
  Site* s = find_site_locked(state.site);
  LMO_CHECK_MSG(s != nullptr,
                "restore_site_state: site not armed: " + state.site);
  LMO_CHECK_GE(state.ops, 0);
  LMO_CHECK_GE(state.failures, 0);
  LMO_CHECK_GE(state.allocs_denied, 0);
  // Rebuild the stream position from scratch: a site's outcome sequence is
  // a pure function of (seed, site name, draws consumed), so replaying the
  // saved draw count re-arms the exact next outcome.
  s->rng = Xoshiro256(seed_ ^ hash_name(state.site));
  for (std::uint64_t i = 0; i < state.draws; ++i) s->rng.uniform();
  s->draws = state.draws;
  s->ops = state.ops;
  s->failures = state.failures;
  s->allocs_denied = state.allocs_denied;
}

std::uint64_t FaultInjector::count(const std::string& site,
                                   FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.site == site && e.kind == kind) ++n;
  }
  return n;
}

ScopedFaultInjection::ScopedFaultInjection(std::uint64_t seed) {
  FaultInjector::instance().enable(seed);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::instance().disable();
}

void ScopedFaultInjection::arm(const std::string& site,
                               const FaultSpec& spec) {
  FaultInjector::instance().arm(site, spec);
}

}  // namespace lmo::util
