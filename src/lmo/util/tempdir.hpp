// RAII unique temporary directory.
//
// TempDir creates a fresh, uniquely-named directory under the system temp
// root on construction and recursively removes it (and everything written
// inside) on destruction. Tests that need real files — the disk-tier block
// store, checkpoint envelopes — use it instead of hand-rolled fixed paths,
// which leak on assertion failure and collide when suites run in parallel.
#pragma once

#include <string>

namespace lmo::util {

class TempDir {
 public:
  /// Creates `<system-tmp>/<prefix>.XXXXXX` (mkdtemp semantics: the suffix
  /// is unique per call). Throws CheckError if creation fails.
  explicit TempDir(const std::string& prefix = "lmo");
  /// Recursively removes the directory. Removal errors are swallowed —
  /// destructors run during exception unwinding and a leaked temp dir is
  /// strictly better than std::terminate.
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// Absolute path of the directory (no trailing separator).
  const std::string& path() const { return path_; }
  /// `path()/name` — convenience join for files inside the directory.
  std::string file(const std::string& name) const;

 private:
  std::string path_;
};

}  // namespace lmo::util
