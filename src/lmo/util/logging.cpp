#include "lmo/util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace lmo::util {
namespace {

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

std::function<void(const std::string&)>& sink_ref() {
  static std::function<void(const std::string&)> sink;
  return sink;
}

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(LogLevel::kWarn)};
  return level;
}

}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  level_ref().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::level() const {
  return static_cast<LogLevel>(level_ref().load(std::memory_order_relaxed));
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_ref() = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (sink_ref()) {
    sink_ref()(message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  }
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << base << ":" << line << " ";
}

LogLine::~LogLine() { Logger::instance().write(level_, stream_.str()); }

}  // namespace detail
}  // namespace lmo::util
