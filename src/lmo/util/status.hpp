// Typed error taxonomy for the offloading runtime.
//
// The seed code threw CheckError for everything; that conflates three very
// different situations which demand different reactions:
//
//   * CheckError        — a contract violation (caller bug). Never retried.
//   * TransferError     — a *transient* host↔device transfer failure (the
//                         PCIe path is the fragile, contended resource).
//                         Retryable with backoff; recoverable by falling
//                         back to a synchronous transfer.
//   * ResourceExhausted — a memory pool ran out of capacity. Recoverable by
//                         degradation (evict staged entries, re-quantize)
//                         rather than by retrying.
//
// ResourceExhausted derives from CheckError so code (and tests) written
// against the seed's fail-fast behavior keeps working, while new recovery
// paths can catch the precise type.
#pragma once

#include <stdexcept>
#include <string>

#include "lmo/util/check.hpp"

namespace lmo::util {

/// An invalid configuration, reported with field-named messages (see
/// util/validate.hpp). A CheckError subtype: configs are caller input, and
/// every validate() predates the typed taxonomy, so fail-fast callers and
/// tests written against CheckError keep working.
class ConfigError : public CheckError {
 public:
  explicit ConfigError(const std::string& what) : CheckError(what) {}
};

/// A transient host↔device transfer failure. Retry with backoff; if the
/// budget is exhausted the error propagates to the caller.
class TransferError : public std::runtime_error {
 public:
  explicit TransferError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A capacity-enforcing pool refused an allocation. Recoverable through the
/// degradation ladder (see docs/robustness.md); still a CheckError subtype
/// so fail-fast callers observe the seed behavior.
class ResourceExhausted : public CheckError {
 public:
  explicit ResourceExhausted(const std::string& what) : CheckError(what) {}
};

/// A disk-tier block store operation failed after its bounded retry budget
/// (device read errors, short writes that read-back verification could not
/// repair). A TransferError subtype: the disk link is just the slowest rung
/// of the same fragile transfer hierarchy, so existing prefetch fallback
/// paths (catch TransferError → synchronous retry) handle it unchanged.
class StorageError : public TransferError {
 public:
  explicit StorageError(const std::string& what) : TransferError(what) {}
};

/// A verified region (host weight shard, KV row, shared prefix block)
/// failed its checksum and the repair ladder could not restore it (see
/// lmo/integrity/). A runtime_error, not a CheckError: corruption is an
/// environmental fault, never a caller bug, and servers recover by rolling
/// the session back to its last checkpoint rather than crashing.
class DataCorruption : public std::runtime_error {
 public:
  explicit DataCorruption(const std::string& what)
      : std::runtime_error(what) {}
};

/// Base class for checkpoint load failures (see lmo/ckpt/). A checkpoint is
/// external input, not a caller contract, so these are runtime_errors:
/// rejecting a bad file must never look like a bug in the caller, and a
/// server can catch the base type and fall back to a cold start.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The file ends before the declared payload does (killed mid-write,
/// partial copy). Retryable against a replica; never partially applied.
class CheckpointTruncated : public CheckpointError {
 public:
  explicit CheckpointTruncated(const std::string& what)
      : CheckpointError(what) {}
};

/// Bad magic or a CRC32 mismatch: the bytes are not (or are no longer) a
/// valid checkpoint. Not retryable against the same file.
class CheckpointCorrupt : public CheckpointError {
 public:
  explicit CheckpointCorrupt(const std::string& what)
      : CheckpointError(what) {}
};

/// Structurally valid file written by an incompatible format version.
class CheckpointVersionMismatch : public CheckpointError {
 public:
  explicit CheckpointVersionMismatch(const std::string& what)
      : CheckpointError(what) {}
};

/// Valid checkpoint, wrong target: the restoring runtime's configuration
/// (model dims, KV flavor, quantization) differs from the snapshot's.
class CheckpointMismatch : public CheckpointError {
 public:
  explicit CheckpointMismatch(const std::string& what)
      : CheckpointError(what) {}
};

}  // namespace lmo::util
