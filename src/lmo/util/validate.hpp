// One config-validation idiom for every *Config struct (ServeConfig,
// RuntimeConfig, OverloadConfig, AdaptiveConfig, ...). Before this helper
// each validate() was a wall of LMO_CHECK macros whose failures read as
// anonymous contract violations; a Validator names the config and the
// field in every message and collects *all* violations before throwing,
// so a CLI user fixing a flag file sees the whole list at once:
//
//   void OverloadConfig::validate() const {
//     util::Validator v("OverloadConfig");
//     v.gt("kv_pool_bytes", kv_pool_bytes, std::size_t{0});
//     v.in_unit("shrink_cache_fraction", shrink_cache_fraction);
//     v.require("demoted_kv_bits", demoted_kv_bits <= 16,
//               "must be a storable bit width (<= 16)");
//     v.done();  // throws ConfigError listing every failure
//   }
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "lmo/util/status.hpp"

namespace lmo::util {

class Validator {
 public:
  /// `config_name` prefixes every message ("ServeConfig.max_batch: ...").
  explicit Validator(std::string config_name)
      : config_(std::move(config_name)) {}

  template <typename T, typename U>
  Validator& ge(const char* field, const T& value, const U& bound) {
    if (!(value >= static_cast<T>(bound))) fail(field, value, ">=", bound);
    return *this;
  }
  template <typename T, typename U>
  Validator& gt(const char* field, const T& value, const U& bound) {
    if (!(value > static_cast<T>(bound))) fail(field, value, ">", bound);
    return *this;
  }
  template <typename T, typename U>
  Validator& le(const char* field, const T& value, const U& bound) {
    if (!(value <= static_cast<T>(bound))) fail(field, value, "<=", bound);
    return *this;
  }
  template <typename T, typename U>
  Validator& lt(const char* field, const T& value, const U& bound) {
    if (!(value < static_cast<T>(bound))) fail(field, value, "<", bound);
    return *this;
  }
  /// Half-open unit interval (0, 1] — the shape of every fraction knob.
  template <typename T>
  Validator& in_unit(const char* field, const T& value) {
    gt(field, value, 0.0);
    return le(field, value, 1.0);
  }
  /// Arbitrary predicate with a caller-phrased reason.
  Validator& require(const char* field, bool ok, const std::string& reason) {
    if (!ok) {
      errors_.push_back(config_ + "." + field + ": " + reason);
    }
    return *this;
  }

  bool ok() const { return errors_.empty(); }
  /// Every collected violation, one per line.
  std::string message() const {
    std::string all;
    for (const std::string& e : errors_) {
      if (!all.empty()) all += "\n";
      all += e;
    }
    return all;
  }
  /// Throw ConfigError with the full violation list; no-op when clean.
  void done() const {
    if (!errors_.empty()) throw ConfigError(message());
  }

 private:
  template <typename T, typename U>
  void fail(const char* field, const T& value, const char* op,
            const U& bound) {
    std::ostringstream os;
    os << config_ << "." << field << ": must be " << op << " " << bound
       << " (got " << value << ")";
    errors_.push_back(os.str());
  }

  std::string config_;
  std::vector<std::string> errors_;
};

/// Run `body` against a fresh Validator and throw the collected errors —
/// the one-expression spelling for validate() methods.
template <typename Body>
void Validate(const std::string& config_name, Body&& body) {
  Validator v(config_name);
  body(v);
  v.done();
}

}  // namespace lmo::util
