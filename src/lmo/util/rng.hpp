// Deterministic, seedable RNG (xoshiro256**). Used for synthetic weights and
// workload generation so every experiment is reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>

namespace lmo::util {

/// splitmix64 — used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x243f6a8885a308d3ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Standard normal via Box–Muller (one value per call; simple, adequate).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double two_pi = 6.283185307179586;
    // sqrt/log/cos pulled in via <cmath> by the including TU is avoided:
    // implement with builtins to keep this header light.
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(two_pi * u2);
  }

  /// Raw generator state, for checkpointing. A restored state continues
  /// the exact output sequence the saved generator would have produced.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace lmo::util
