#include "lmo/util/tempdir.hpp"

#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <vector>

#include "lmo/util/check.hpp"

namespace lmo::util {

TempDir::TempDir(const std::string& prefix) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path root = fs::temp_directory_path(ec);
  if (ec) root = "/tmp";
  const std::string pattern = (root / (prefix + ".XXXXXX")).string();
  // mkdtemp mutates its argument in place, so hand it a writable copy.
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  LMO_CHECK_MSG(::mkdtemp(buf.data()) != nullptr,
                "TempDir: mkdtemp failed for " + pattern);
  path_ = buf.data();
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
}

std::string TempDir::file(const std::string& name) const {
  return path_ + "/" + name;
}

}  // namespace lmo::util
