#include "lmo/core/plan_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "lmo/util/check.hpp"
#include "lmo/util/string_util.hpp"

namespace lmo::core {

namespace {

// Typed numeric parsing: a malformed or out-of-range value in a plan file
// must surface as a CheckError naming the key, not leak std::invalid_argument
// out of std::stoll. The whole token must be consumed — "12abc" is garbage,
// not 12.
std::int64_t parse_i64(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const std::int64_t parsed = std::stoll(value, &consumed);
    LMO_CHECK_MSG(consumed == value.size(),
                  "trailing garbage in integer for " + key + ": " + value);
    return parsed;
  } catch (const util::CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw util::CheckError("bad integer for plan key " + key + ": " + value);
  }
}

double parse_f64(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    LMO_CHECK_MSG(consumed == value.size(),
                  "trailing garbage in number for " + key + ": " + value);
    return parsed;
  } catch (const util::CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw util::CheckError("bad number for plan key " + key + ": " + value);
  }
}

}  // namespace

bool SavedPlan::operator==(const SavedPlan& other) const {
  return model == other.model &&
         workload.prompt_len == other.workload.prompt_len &&
         workload.gen_len == other.workload.gen_len &&
         workload.gpu_batch == other.workload.gpu_batch &&
         workload.num_batches == other.workload.num_batches &&
         policy == other.policy;
}

std::string plan_to_string(const SavedPlan& plan) {
  std::ostringstream os;
  // max_digits10 so fractional placements survive the text round-trip
  // bit-exactly (a truncated weights_on_gpu would silently shift the plan).
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# lm-offload plan\n";
  os << "model = " << plan.model << "\n";
  os << "workload.prompt_len = " << plan.workload.prompt_len << "\n";
  os << "workload.gen_len = " << plan.workload.gen_len << "\n";
  os << "workload.gpu_batch = " << plan.workload.gpu_batch << "\n";
  os << "workload.num_batches = " << plan.workload.num_batches << "\n";
  os << "policy.weights_on_gpu = " << plan.policy.weights_on_gpu << "\n";
  os << "policy.cache_on_gpu = " << plan.policy.cache_on_gpu << "\n";
  os << "policy.activations_on_gpu = " << plan.policy.activations_on_gpu
     << "\n";
  os << "policy.weights_on_disk = " << plan.policy.weights_on_disk << "\n";
  os << "policy.attention_on_cpu = "
     << (plan.policy.attention_on_cpu ? 1 : 0) << "\n";
  os << "policy.weight_bits = " << plan.policy.weight_bits << "\n";
  os << "policy.kv_bits = " << plan.policy.kv_bits << "\n";
  os << "policy.resident_weights_compressed = "
     << (plan.policy.resident_weights_compressed ? 1 : 0) << "\n";
  os << "policy.parallelism_control = "
     << (plan.policy.parallelism_control ? 1 : 0) << "\n";
  return os.str();
}

SavedPlan plan_from_string(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "missing '=' on plan line " + std::to_string(line_number));
    kv[util::trim(trimmed.substr(0, eq))] =
        util::trim(trimmed.substr(eq + 1));
  }

  SavedPlan plan;
  const auto take = [&](const char* key) {
    auto it = kv.find(key);
    LMO_CHECK_MSG(it != kv.end(), std::string("plan missing key: ") + key);
    const std::string value = it->second;
    kv.erase(it);
    return value;
  };
  const auto take_i64 = [&](const char* key) {
    return parse_i64(key, take(key));
  };
  const auto take_f64 = [&](const char* key) {
    return parse_f64(key, take(key));
  };
  plan.model = take("model");
  plan.workload.prompt_len = take_i64("workload.prompt_len");
  plan.workload.gen_len = take_i64("workload.gen_len");
  plan.workload.gpu_batch = take_i64("workload.gpu_batch");
  plan.workload.num_batches = take_i64("workload.num_batches");
  plan.policy.weights_on_gpu = take_f64("policy.weights_on_gpu");
  plan.policy.cache_on_gpu = take_f64("policy.cache_on_gpu");
  plan.policy.activations_on_gpu = take_f64("policy.activations_on_gpu");
  plan.policy.weights_on_disk = take_f64("policy.weights_on_disk");
  plan.policy.attention_on_cpu = take_i64("policy.attention_on_cpu") != 0;
  plan.policy.weight_bits =
      static_cast<int>(take_i64("policy.weight_bits"));
  plan.policy.kv_bits = static_cast<int>(take_i64("policy.kv_bits"));
  plan.policy.resident_weights_compressed =
      take_i64("policy.resident_weights_compressed") != 0;
  plan.policy.parallelism_control =
      take_i64("policy.parallelism_control") != 0;
  for (const auto& [key, value] : kv) {
    LMO_CHECK_MSG(false, "unknown plan key: " + key);
  }
  plan.workload.validate();
  plan.policy.validate();
  return plan;
}

void save_plan(const SavedPlan& plan, const std::string& path) {
  std::ofstream out(path);
  LMO_CHECK_MSG(out.good(), "cannot open plan file for writing: " + path);
  out << plan_to_string(plan);
  LMO_CHECK_MSG(out.good(), "write failed for plan file: " + path);
}

SavedPlan load_plan(const std::string& path) {
  std::ifstream in(path);
  LMO_CHECK_MSG(in.good(), "cannot open plan file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return plan_from_string(buffer.str());
}

}  // namespace lmo::core
