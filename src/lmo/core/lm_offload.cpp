#include "lmo/core/lm_offload.hpp"

#include <algorithm>

#include "lmo/parallel/bundling.hpp"
#include "lmo/sched/schedule_builder.hpp"

namespace lmo::core {

const char* version() { return "1.0.0"; }

model::OpGraph LMOffload::compute_graph(const model::ModelSpec& spec,
                                        const model::Workload& workload,
                                        const perfmodel::Policy& policy) {
  model::AttentionGraphParams params;
  params.hidden = spec.hidden;
  params.seq_len = workload.prompt_len + workload.gen_len / 2;
  params.batch = workload.gpu_batch;
  // The compute task co-hosts the batches of the zig-zag block that are
  // in flight at once; a handful is typical (Alg. 1 inner loop).
  params.num_batches = static_cast<int>(
      std::min<std::int64_t>(workload.num_batches, 3));
  params.kv_bits = policy.kv_bits;
  auto graph = model::build_attention_graph(params);
  // Bundle dispatch-dominated small ops before concurrency analysis.
  parallel::bundle_small_ops(graph);
  return graph;
}

std::array<double, parallel::kNumIoTasks> LMOffload::io_volumes(
    const model::ModelSpec& spec, const model::Workload& workload,
    const perfmodel::Policy& policy) {
  std::array<double, parallel::kNumIoTasks> volumes{};
  volumes[parallel::kLoadWeight] =
      model::layer_weight_bytes(spec, policy.weight_bits) *
      (1.0 - policy.weights_on_gpu);
  const double act = model::activation_bytes(spec, workload, 16);
  if (policy.attention_on_cpu) {
    volumes[parallel::kStoreActivation] = act;
    volumes[parallel::kLoadActivation] = act;
  } else {
    const double stream = 1.0 - policy.cache_on_gpu;
    const std::int64_t mid = workload.gen_len / 2;
    volumes[parallel::kLoadCache] =
        model::kv_cache_bytes_at(spec, workload, mid, policy.kv_bits) *
        stream;
    volumes[parallel::kStoreCache] =
        model::new_kv_cache_bytes(spec, workload, policy.kv_bits) * stream;
    const double spill = 1.0 - policy.activations_on_gpu;
    volumes[parallel::kStoreActivation] = act * spill;
    volumes[parallel::kLoadActivation] = act * spill;
  }
  return volumes;
}

Plan LMOffload::plan(const model::ModelSpec& spec,
                     const model::Workload& workload,
                     const hw::Platform& platform,
                     const PlanOptions& options) {
  auto space = sched::SearchSpace::lm_offload(options.parallelism_control);
  if (!options.allow_weight_quant) space.weight_bits_choices = {16};
  if (!options.allow_kv_quant) space.kv_bits_choices = {16};

  Plan plan;
  plan.search = sched::search_policy(spec, workload, platform, space);
  plan.compute_graph = compute_graph(spec, workload, plan.policy());

  parallel::SearchInput input;
  input.compute_graph = plan.compute_graph;
  input.io_bytes = io_volumes(spec, workload, plan.policy());
  input.platform = platform;
  // Disk-resident weight shards cross disk→CPU every step; size the
  // disk-load staging task for that stream (three-tier offload).
  input.disk_bytes =
      model::layer_weight_bytes(spec, plan.policy().weight_bits) *
      plan.policy().weights_on_disk;
  if (options.parallelism_control) {
    plan.parallelism = parallel::find_optimal_parallelism(input);
  } else {
    plan.parallelism = parallel::default_parallelism(input);
  }
  return plan;
}

sched::SimulationReport LMOffload::run(const model::ModelSpec& spec,
                                       const model::Workload& workload,
                                       const hw::Platform& platform,
                                       const PlanOptions& options) {
  const Plan planned = plan(spec, workload, platform, options);
  return run_with_policy(spec, workload, planned.policy(), platform);
}

sched::SimulationReport LMOffload::run_with_policy(
    const model::ModelSpec& spec, const model::Workload& workload,
    const perfmodel::Policy& policy, const hw::Platform& platform) {
  return sched::simulate(spec, workload, policy, platform, kName);
}

}  // namespace lmo::core
