#include "lmo/core/decisions.hpp"

#include <algorithm>

#include "lmo/perfmodel/estimator.hpp"
#include "lmo/perfmodel/quant_model.hpp"

namespace lmo::core {
namespace {

using perfmodel::Policy;
using perfmodel::StepCosts;

StepCosts mid_step(const model::ModelSpec& spec, const model::Workload& w,
                   const Policy& policy, const hw::Platform& platform) {
  return perfmodel::step_costs(spec, w, policy, platform, w.gen_len / 2);
}

}  // namespace

QuantDecision decide_weight_quantization(const model::ModelSpec& spec,
                                         const model::Workload& w,
                                         const Policy& base, int bits,
                                         const hw::Platform& platform) {
  Policy plain = base;
  plain.weight_bits = 16;
  Policy quantized = base;
  quantized.weight_bits = bits;

  QuantDecision decision;
  decision.seconds_without = mid_step(spec, w, plain, platform).load_weight;

  // Quantized load already folds in the GPU dequant (Eq. 4); add the
  // one-time CPU quantization (Eq. 3) amortized over every (step, layer)
  // load it pays for.
  const double steps =
      static_cast<double>(std::max<std::int64_t>(w.gen_len - 1, 1));
  const double one_time =
      perfmodel::quan_pf_wgt_seconds(spec, 1.0 - base.weights_on_gpu,
                                     platform) /
      steps;
  decision.seconds_with =
      mid_step(spec, w, quantized, platform).load_weight + one_time;
  decision.beneficial = decision.seconds_with < decision.seconds_without;
  return decision;
}

QuantDecision decide_kv_quantization(const model::ModelSpec& spec,
                                     const model::Workload& w,
                                     const Policy& base, int bits,
                                     const hw::Platform& platform) {
  Policy plain = base;
  plain.kv_bits = 16;
  Policy quantized = base;
  quantized.kv_bits = bits;

  const StepCosts without = mid_step(spec, w, plain, platform);
  const StepCosts with = mid_step(spec, w, quantized, platform);

  QuantDecision decision;
  if (base.attention_on_cpu) {
    // No cache traffic either way; the (de)quant work lands on the CPU
    // compute task (paper Observation 1: pure overhead).
    decision.seconds_without = without.compute_cpu;
    decision.seconds_with = with.compute_cpu;
  } else {
    decision.seconds_without = without.load_cache + without.store_cache;
    decision.seconds_with = with.load_cache + with.store_cache;
  }
  decision.beneficial = decision.seconds_with < decision.seconds_without;
  return decision;
}

AttentionPlacementDecision decide_attention_placement(
    const model::ModelSpec& spec, const model::Workload& w,
    const Policy& base, const hw::Platform& platform) {
  auto best_t_gen = [&](bool on_cpu) {
    double best = 0.0;
    bool first = true;
    for (int kv_bits : {16, 8, 4}) {
      Policy p = base;
      p.attention_on_cpu = on_cpu;
      p.kv_bits = kv_bits;
      if (on_cpu) p.cache_on_gpu = 0.0;
      const double t = mid_step(spec, w, p, platform).t_gen;
      if (first || t < best) {
        best = t;
        first = false;
      }
    }
    return best;
  };

  AttentionPlacementDecision decision;
  decision.cpu_seconds = best_t_gen(true);
  decision.gpu_seconds = best_t_gen(false);
  decision.offload_to_cpu = decision.cpu_seconds <= decision.gpu_seconds;
  return decision;
}

}  // namespace lmo::core
