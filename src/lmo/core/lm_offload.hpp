// LM-Offload — the paper's system. Planning combines:
//   1. the quantization-aware policy search over placement × attention ×
//      bit widths, scored by the full performance model (paper §3);
//   2. thread-level parallelism control via Algorithm 3 over the attention
//      op-dependency graph (paper §4).
// Execution replays the chosen plan on the discrete-event simulator (paper-
// scale platforms) — the real-tensor execution path lives in lmo::runtime.
//
// This header is the primary public entry point of the library.
#pragma once

#include <string>

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/parallel/parallelism_search.hpp"
#include "lmo/sched/policy_search.hpp"
#include "lmo/sched/report.hpp"

namespace lmo::core {

struct Plan {
  sched::SearchResult search;               ///< chosen policy + its estimate
  parallel::ParallelismPlan parallelism;    ///< Algorithm-3 thread plan
  model::OpGraph compute_graph;             ///< graph the plan was built on

  const perfmodel::Policy& policy() const { return search.best; }
};

struct PlanOptions {
  /// Disable Algorithm 3 (paper Fig. 7 evaluates modeling alone).
  bool parallelism_control = true;
  /// Restrict the search's quantization dimensions (Fig. 3 ablations).
  bool allow_weight_quant = true;
  bool allow_kv_quant = true;
};

class LMOffload {
 public:
  static constexpr const char* kName = "lm-offload";

  static Plan plan(const model::ModelSpec& spec,
                   const model::Workload& workload,
                   const hw::Platform& platform,
                   const PlanOptions& options = {});

  /// Plan, then execute on the DES.
  static sched::SimulationReport run(const model::ModelSpec& spec,
                                     const model::Workload& workload,
                                     const hw::Platform& platform,
                                     const PlanOptions& options = {});

  static sched::SimulationReport run_with_policy(
      const model::ModelSpec& spec, const model::Workload& workload,
      const perfmodel::Policy& policy, const hw::Platform& platform);

  /// Build the attention compute-task graph (Fig. 6) sized for this
  /// workload and policy; shared by planning, Fig. 5 and Fig. 8 benches.
  static model::OpGraph compute_graph(const model::ModelSpec& spec,
                                      const model::Workload& workload,
                                      const perfmodel::Policy& policy);

  /// Per-step I/O volumes of the five load/store tasks under a policy —
  /// the inputs Algorithm 3 uses to assign the remaining threads.
  static std::array<double, parallel::kNumIoTasks> io_volumes(
      const model::ModelSpec& spec, const model::Workload& workload,
      const perfmodel::Policy& policy);
};

/// Library version, for downstream packaging.
const char* version();

}  // namespace lmo::core
