// The three model-guided decisions of paper §3.2 ("How to use the models"):
//   1. is weight quantization beneficial?
//   2. is KV-cache quantization beneficial?
//   3. is attention offloading (still) beneficial once quantization is in
//      play?
// Each compares the relevant task times with and without the quantization
// terms (Eqs. 3-9), amortizing one-time costs over the run. These are the
// building blocks the full policy search generalizes; they are exposed
// separately because they are the paper's headline mechanism and make good
// unit-test and example targets.
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"

namespace lmo::core {

struct QuantDecision {
  bool beneficial = false;
  double seconds_without = 0.0;  ///< task time, no quantization
  double seconds_with = 0.0;     ///< task time + (de)quant overhead
  double gain() const {          ///< >1 means quantization wins
    return seconds_with > 0.0 ? seconds_without / seconds_with : 0.0;
  }
};

/// Decision 1: weight quantization at `bits`, for the policy's current
/// placement/attention choices. Compares per-step load_weight against the
/// quantized load + GPU dequant + amortized one-time CPU quantization.
QuantDecision decide_weight_quantization(const model::ModelSpec& spec,
                                         const model::Workload& w,
                                         const perfmodel::Policy& base,
                                         int bits,
                                         const hw::Platform& platform);

/// Decision 2: KV-cache quantization at `bits`. Compares
/// (load_cache + store_cache) against (Eq. 6 + Eq. 7). With attention
/// offloaded the cache traffic is zero, so quantization can only add
/// overhead — the decision comes back negative (paper Observation 1).
QuantDecision decide_kv_quantization(const model::ModelSpec& spec,
                                     const model::Workload& w,
                                     const perfmodel::Policy& base, int bits,
                                     const hw::Platform& platform);

struct AttentionPlacementDecision {
  bool offload_to_cpu = false;
  double cpu_seconds = 0.0;  ///< best per-step T_gen with CPU attention
  double gpu_seconds = 0.0;  ///< best per-step T_gen with GPU attention
};

/// Decision 3: attention placement, evaluated *with* each side's best
/// quantization setting (the paper's point: quantization flips this
/// comparison's winner for some workloads).
AttentionPlacementDecision decide_attention_placement(
    const model::ModelSpec& spec, const model::Workload& w,
    const perfmodel::Policy& base, const hw::Platform& platform);

}  // namespace lmo::core
