// Plan persistence: serialize a policy (plus its workload context) to a
// small text format and load it back — FlexGen ships such policy files so
// expensive searches are paid once per (model, hardware, workload). Format
// is the same key=value dialect as platform configs.
#pragma once

#include <string>

#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"

namespace lmo::core {

struct SavedPlan {
  std::string model;  ///< ModelSpec name the plan was made for
  model::Workload workload;
  perfmodel::Policy policy;

  bool operator==(const SavedPlan& other) const;
};

/// Serialize to the key=value text format.
std::string plan_to_string(const SavedPlan& plan);

/// Parse; throws CheckError on malformed input, unknown keys, or a policy
/// that fails validation.
SavedPlan plan_from_string(const std::string& text);

void save_plan(const SavedPlan& plan, const std::string& path);
SavedPlan load_plan(const std::string& path);

}  // namespace lmo::core
