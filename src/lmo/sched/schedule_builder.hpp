// Builds the full discrete-event schedule of one inference run — prefill
// plus the Algorithm-1 decode loop with its six asynchronous tasks — for
// any execution policy, and runs it on the DES engine.
//
// Task categories in the emitted schedule (aggregation keys for the paper's
// breakdown figures):
//   load_weight, load_cache, load_activation, store_cache,
//   store_activation, compute_attention, compute_mlp, quantize,
//   dequantize, sync, prefill_*
//
// The builder also fills I/O byte counters per channel (Table 1) as it
// emits transfer tasks, so traffic accounting and timing always agree.
#pragma once

#include <optional>

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"
#include "lmo/sched/report.hpp"

namespace lmo::sched {

/// Task granularity of the emitted decode schedule.
enum class Granularity {
  /// One task group per (step, layer), batch work folded into durations —
  /// compact, used for large sweeps.
  kLayerAggregated,
  /// The literal Algorithm 1: the inner k-loop over the zig-zag block's
  /// batches, six asynchronous tasks per (step, layer, batch) —
  /// load_weight(i,j+1,k), store_activation/store_cache(i,j,k-1),
  /// load_cache/load_activation(i,j,k+1), compute(i,j,k) — with the
  /// per-layer synchronize(). ~6·n·l·nb tasks.
  kPerBatch,
};

struct BuildOptions {
  /// Include the prefill phase in the schedule (on by default; Fig. 8
  /// isolates the decode tasks by disabling it).
  bool include_prefill = true;
  /// Emit decode steps for t in [1, gen_len); when false only step
  /// `single_step` is emitted (used for per-step analysis).
  bool all_steps = true;
  std::int64_t single_step = 1;
  Granularity granularity = Granularity::kLayerAggregated;
  /// Map the wg fraction to whole layers (FlexGen's actual layout: the
  /// first ⌊wg·l⌋ layers fully GPU-resident, the rest fully streamed)
  /// instead of smearing the fraction uniformly over every layer. Total
  /// traffic matches the smeared mode up to rounding; the schedule gets
  /// burstier.
  bool per_layer_weights = false;
  /// Degrade the run with the DES fault model (task failures +
  /// re-executions), so the performance model predicts recovery overhead;
  /// see bench_robustness. Empty = clean execution.
  std::optional<sim::FaultModel> fault_model;
};

/// Simulate `spec` × `workload` under `policy` on `platform`. Computes the
/// same quantities the paper measures: throughput (tokens/s over
/// prefill+decode), per-category time, and per-channel I/O traffic.
SimulationReport simulate(const model::ModelSpec& spec,
                          const model::Workload& workload,
                          const perfmodel::Policy& policy,
                          const hw::Platform& platform,
                          const std::string& framework,
                          const BuildOptions& options = {});

}  // namespace lmo::sched
