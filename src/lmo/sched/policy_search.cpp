#include "lmo/sched/policy_search.hpp"

#include "lmo/util/check.hpp"
#include "lmo/util/rng.hpp"

namespace lmo::sched {
namespace {

std::vector<double> percent_grid(int step_percent) {
  std::vector<double> grid;
  for (int p = 0; p <= 100; p += step_percent) {
    grid.push_back(static_cast<double>(p) / 100.0);
  }
  return grid;
}

}  // namespace

SearchSpace SearchSpace::flexgen() {
  SearchSpace space;
  space.wg_choices = percent_grid(5);
  space.cg_choices = {0.0, 0.25, 0.5, 0.75, 1.0};
  space.hg_choices = {0.0, 1.0};
  space.wd_choices = {0.0, 0.25, 0.5};
  space.attention_on_cpu_choices = {true, false};
  space.weight_bits_choices = {16};
  space.kv_bits_choices = {16};
  return space;
}

SearchSpace SearchSpace::lm_offload(bool parallelism_control) {
  SearchSpace space;
  space.wg_choices = percent_grid(5);
  space.cg_choices = {0.0, 0.25, 0.5, 0.75, 1.0};
  space.hg_choices = {0.0, 1.0};
  space.wd_choices = {0.0, 0.25, 0.5};
  space.attention_on_cpu_choices = {true, false};
  space.allow_hybrid_attention = true;
  space.weight_bits_choices = {16, 8, 4};
  space.kv_bits_choices = {16, 8, 4};
  space.parallelism_control = parallelism_control;
  return space;
}

SearchResult search_policy(const model::ModelSpec& spec,
                           const model::Workload& workload,
                           const hw::Platform& platform,
                           const SearchSpace& space,
                           const perfmodel::EstimatorOptions& options) {
  LMO_CHECK(!space.wg_choices.empty());
  LMO_CHECK(!space.cg_choices.empty());
  LMO_CHECK(!space.hg_choices.empty());
  LMO_CHECK(!space.attention_on_cpu_choices.empty());
  LMO_CHECK(!space.weight_bits_choices.empty());
  LMO_CHECK(!space.kv_bits_choices.empty());

  SearchResult result;
  bool found = false;

  for (bool attn_cpu : space.attention_on_cpu_choices) {
    for (int wbits : space.weight_bits_choices) {
      for (int kvbits : space.kv_bits_choices) {
        // With attention on the CPU the cache never crosses PCIe, so cg and
        // (for the CPU-resident cache) dequantization-free kv=16 are the
        // only meaningful choices unless the policy compresses host memory.
        for (double wg : space.wg_choices) {
          for (double cg : space.cg_choices) {
            // CPU attention with a GPU-resident cache slice requires the
            // hybrid split; otherwise the cache lives with the compute.
            const bool hybrid = attn_cpu && cg > 0.0;
            if (hybrid && !space.allow_hybrid_attention) continue;
            // The FlexGen-derived runtime compresses only the host-side
            // cache; GPU-resident KV stays in compute precision (Table 3:
            // cg=0 whenever the cache is quantized).
            if (kvbits < 16 && cg > 0.0) continue;
            for (double hg : space.hg_choices) {
              for (double wd : space.wd_choices) {
                if (wg + wd > 1.0) continue;
                perfmodel::Policy policy;
                policy.weights_on_gpu = wg;
                policy.cache_on_gpu = cg;
                policy.activations_on_gpu = hg;
                policy.weights_on_disk = wd;
                policy.attention_on_cpu = attn_cpu;
                policy.hybrid_attention = hybrid;
                policy.weight_bits = wbits;
                policy.kv_bits = kvbits;
                policy.resident_weights_compressed =
                    space.resident_weights_compressed;
                policy.parallelism_control = space.parallelism_control;

                ++result.evaluated;
                const auto est =
                    perfmodel::estimate(spec, workload, policy, platform,
                                        options);
                if (!est.fits) continue;
                ++result.feasible;

                const bool better =
                    !found || est.throughput > result.estimate.throughput ||
                    (est.throughput == result.estimate.throughput &&
                     est.gpu_bytes_needed <
                         result.estimate.gpu_bytes_needed);
                if (better) {
                  result.best = policy;
                  result.estimate = est;
                  found = true;
                }
              }
            }
          }
        }
      }
    }
  }
  LMO_CHECK_MSG(found, "no feasible policy for " + spec.name +
                           " on " + platform.name);
  return result;
}

namespace {

/// Sample a random policy from the space (uniform over each dimension).
perfmodel::Policy random_policy(const SearchSpace& space,
                                util::Xoshiro256& rng) {
  const auto pick = [&rng](const auto& choices) {
    return choices[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(choices.size())))];
  };
  perfmodel::Policy p;
  p.weights_on_gpu = pick(space.wg_choices);
  p.cache_on_gpu = pick(space.cg_choices);
  p.activations_on_gpu = pick(space.hg_choices);
  p.weights_on_disk = pick(space.wd_choices);
  p.attention_on_cpu = pick(space.attention_on_cpu_choices);
  p.weight_bits = pick(space.weight_bits_choices);
  p.kv_bits = pick(space.kv_bits_choices);
  p.resident_weights_compressed = space.resident_weights_compressed;
  p.parallelism_control = space.parallelism_control;
  return p;
}

/// Project a candidate onto the space's constraint set; returns false when
/// the combination is structurally invalid.
bool legalize(const SearchSpace& space, perfmodel::Policy& p) {
  if (p.weights_on_gpu + p.weights_on_disk > 1.0) return false;
  if (p.kv_bits < 16 && p.cache_on_gpu > 0.0) return false;
  p.hybrid_attention = p.attention_on_cpu && p.cache_on_gpu > 0.0;
  if (p.hybrid_attention && !space.allow_hybrid_attention) return false;
  return true;
}

/// Mutate one dimension to a neighbouring choice.
perfmodel::Policy mutate(const SearchSpace& space,
                         const perfmodel::Policy& base,
                         util::Xoshiro256& rng) {
  const auto nudge = [&rng](const auto& choices, auto current) {
    // Move to an adjacent grid value (or anywhere for tiny grids).
    std::size_t index = 0;
    for (std::size_t i = 0; i < choices.size(); ++i) {
      if (choices[i] == current) index = i;
    }
    const bool up = rng.below(2) == 0;
    if (up && index + 1 < choices.size()) return choices[index + 1];
    if (!up && index > 0) return choices[index - 1];
    return choices[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(choices.size())))];
  };
  perfmodel::Policy p = base;
  switch (rng.below(7)) {
    case 0:
      p.weights_on_gpu = nudge(space.wg_choices, p.weights_on_gpu);
      break;
    case 1:
      p.cache_on_gpu = nudge(space.cg_choices, p.cache_on_gpu);
      break;
    case 2:
      p.activations_on_gpu = nudge(space.hg_choices, p.activations_on_gpu);
      break;
    case 3:
      p.weights_on_disk = nudge(space.wd_choices, p.weights_on_disk);
      break;
    case 4:
      p.attention_on_cpu = !p.attention_on_cpu;
      break;
    case 5:
      p.weight_bits = nudge(space.weight_bits_choices, p.weight_bits);
      break;
    default:
      p.kv_bits = nudge(space.kv_bits_choices, p.kv_bits);
  }
  return p;
}

}  // namespace

SearchResult search_policy_stochastic(const model::ModelSpec& spec,
                                      const model::Workload& workload,
                                      const hw::Platform& platform,
                                      const SearchSpace& space,
                                      const perfmodel::EstimatorOptions&
                                          options,
                                      int restarts, int steps_per_restart,
                                      std::uint64_t seed) {
  LMO_CHECK_GE(restarts, 1);
  LMO_CHECK_GE(steps_per_restart, 1);
  util::Xoshiro256 rng(seed);
  SearchResult result;
  bool found = false;

  const auto consider = [&](perfmodel::Policy candidate) -> double {
    ++result.evaluated;
    const auto est =
        perfmodel::estimate(spec, workload, candidate, platform, options);
    if (!est.fits) return -1.0;
    ++result.feasible;
    if (!found || est.throughput > result.estimate.throughput) {
      result.best = candidate;
      result.estimate = est;
      found = true;
    }
    return est.throughput;
  };

  for (int r = 0; r < restarts; ++r) {
    // Find a feasible starting point.
    perfmodel::Policy current;
    double current_score = -1.0;
    for (int tries = 0; tries < 50 && current_score < 0.0; ++tries) {
      perfmodel::Policy candidate = random_policy(space, rng);
      if (!legalize(space, candidate)) continue;
      current_score = consider(candidate);
      if (current_score >= 0.0) current = candidate;
    }
    if (current_score < 0.0) continue;

    for (int s = 0; s < steps_per_restart; ++s) {
      perfmodel::Policy candidate = mutate(space, current, rng);
      if (!legalize(space, candidate)) continue;
      const double score = consider(candidate);
      if (score > current_score) {
        current = candidate;
        current_score = score;
      }
    }
  }
  LMO_CHECK_MSG(found, "stochastic search found no feasible policy for " +
                           spec.name);
  return result;
}

BlockSearchResult search_block_size(const model::ModelSpec& spec,
                                    const model::Workload& shape,
                                    const hw::Platform& platform,
                                    const SearchSpace& space,
                                    const perfmodel::EstimatorOptions& options,
                                    std::int64_t max_batches) {
  LMO_CHECK_GE(max_batches, 1);
  BlockSearchResult best;
  bool found = false;
  for (std::int64_t gpu_batch : {16, 32, 64}) {
    for (std::int64_t nb = 1; nb <= max_batches; nb *= 2) {
      model::Workload w = shape;
      w.gpu_batch = gpu_batch;
      w.num_batches = nb;
      ++best.blocks_tried;
      SearchResult candidate;
      try {
        candidate = search_policy(spec, w, platform, space, options);
      } catch (const util::CheckError&) {
        continue;  // nothing fits at this block
      }
      ++best.blocks_feasible;
      if (!found ||
          candidate.estimate.throughput > best.search.estimate.throughput) {
        best.workload = w;
        best.search = candidate;
        found = true;
      }
    }
  }
  LMO_CHECK_MSG(found, "no feasible (block, policy) for " + spec.name +
                           " on " + platform.name);
  return best;
}

}  // namespace lmo::sched
