#include "lmo/sched/flexgen.hpp"

#include "lmo/sched/schedule_builder.hpp"

namespace lmo::sched {

SearchResult FlexGen::plan(const model::ModelSpec& spec,
                           const model::Workload& workload,
                           const hw::Platform& platform) {
  perfmodel::EstimatorOptions options;
  options.flexgen_style = true;      // no quantization/overhead modeling
  options.use_average_kv = true;     // FlexGen models the average KV size
  return search_policy(spec, workload, platform, SearchSpace::flexgen(),
                       options);
}

SimulationReport FlexGen::run(const model::ModelSpec& spec,
                              const model::Workload& workload,
                              const hw::Platform& platform) {
  const auto planned = plan(spec, workload, platform);
  return run_with_policy(spec, workload, planned.best, platform);
}

SimulationReport FlexGen::run_with_policy(const model::ModelSpec& spec,
                                          const model::Workload& workload,
                                          const perfmodel::Policy& policy,
                                          const hw::Platform& platform) {
  return simulate(spec, workload, policy, platform, kName);
}

}  // namespace lmo::sched
