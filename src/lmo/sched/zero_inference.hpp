// ZeRO-Inference baseline (paper §5.1, Aminabadi et al. SC'22): no partial
// tensor offloading — a tensor class is entirely on the GPU or entirely
// off. Following the paper's evaluation setup, weights are 4-bit quantized
// and GPU-resident (dequantized on the fly each layer), the KV cache lives
// in host memory and streams through PCIe for GPU attention, activations
// stay on the GPU, and there is no zig-zag blocking (one inference batch).
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"
#include "lmo/sched/report.hpp"

namespace lmo::sched {

class ZeroInference {
 public:
  static constexpr const char* kName = "zero-inference";

  /// The fixed whole-tensor policy described above.
  static perfmodel::Policy policy();

  /// Largest batch ZeRO-Inference sustains for this configuration: the
  /// whole-tensor design keeps every in-flight activation and attention
  /// working buffer on the GPU, which caps the batch long before
  /// LM-Offload's partial offloading does (paper: "enables an average of
  /// 24× larger batch sizes"). Power-of-two, capped at `max_batch`.
  static std::int64_t max_feasible_batch(const model::ModelSpec& spec,
                                         const model::Workload& shape,
                                         const hw::Platform& platform,
                                         std::int64_t max_batch = 64);

  /// Run with batch = max_feasible_batch and num_batches = 1.
  static SimulationReport run(const model::ModelSpec& spec,
                              const model::Workload& shape,
                              const hw::Platform& platform);

  /// Run with a caller-fixed batch (e.g. the paper's measured values).
  static SimulationReport run_with_batch(const model::ModelSpec& spec,
                                         const model::Workload& shape,
                                         std::int64_t batch,
                                         const hw::Platform& platform);
};

}  // namespace lmo::sched
