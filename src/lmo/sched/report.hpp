// Result of simulating one inference run under a policy: the throughput
// numbers the paper's tables report plus the task-level trace its figures
// break down.
#pragma once

#include <string>

#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/policy.hpp"
#include "lmo/sim/counters.hpp"
#include "lmo/sim/engine.hpp"

namespace lmo::sched {

struct SimulationReport {
  std::string framework;  ///< "flexgen", "zero-inference", "lm-offload"
  perfmodel::Policy policy;
  model::Workload workload;

  double init_seconds = 0.0;     ///< T_init (weights from disk)
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  double total_seconds = 0.0;    ///< prefill + decode
  double throughput = 0.0;       ///< tokens/s

  double memory_bytes = 0.0;     ///< "mem" column of Table 3
  double gpu_bytes = 0.0;
  double cpu_bytes = 0.0;

  sim::RunResult run;            ///< full task trace (Figs. 4, 8)
  sim::Counters counters;        ///< I/O traffic by channel (Table 1)
};

}  // namespace lmo::sched
