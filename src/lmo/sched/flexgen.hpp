// FlexGen baseline (paper §2.2, Sheng et al. ICML'23): zig-zag block
// scheduling with a linear-programming policy search over tensor placement.
// Reproduced with the paper's criticism intact: the search scores
// candidates with an *optimistic* cost model that ignores quantization
// overheads, per-task launch costs and thread contention — so the policy
// it picks is not the one that runs fastest on the real (simulated)
// machine.
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/sched/policy_search.hpp"
#include "lmo/sched/report.hpp"

namespace lmo::sched {

class FlexGen {
 public:
  static constexpr const char* kName = "flexgen";

  /// LP-style policy search (placement only, no quantization, optimistic
  /// cost model).
  static SearchResult plan(const model::ModelSpec& spec,
                           const model::Workload& workload,
                           const hw::Platform& platform);

  /// Plan, then execute the chosen policy on the DES.
  static SimulationReport run(const model::ModelSpec& spec,
                              const model::Workload& workload,
                              const hw::Platform& platform);

  /// Execute a caller-chosen policy under FlexGen's runtime (used by the
  /// Fig. 3 strategy sweep, which varies quantization by hand).
  static SimulationReport run_with_policy(const model::ModelSpec& spec,
                                          const model::Workload& workload,
                                          const perfmodel::Policy& policy,
                                          const hw::Platform& platform);
};

}  // namespace lmo::sched
