#include "lmo/sched/zero_inference.hpp"

#include <algorithm>

#include "lmo/sched/schedule_builder.hpp"
#include "lmo/util/check.hpp"

namespace lmo::sched {

perfmodel::Policy ZeroInference::policy() {
  perfmodel::Policy p;
  p.weights_on_gpu = 1.0;              // whole tensor on GPU...
  p.weight_bits = 4;                   // ...kept 4-bit quantized
  p.resident_weights_compressed = true;
  p.cache_on_gpu = 0.0;                // KV cache offloaded wholesale
  p.kv_bits = 16;                      // no KV quantization support
  p.activations_on_gpu = 1.0;
  p.attention_on_cpu = false;          // attention on GPU, cache streamed
  p.parallelism_control = false;
  return p;
}

std::int64_t ZeroInference::max_feasible_batch(const model::ModelSpec& spec,
                                               const model::Workload& shape,
                                               const hw::Platform& platform,
                                               std::int64_t max_batch) {
  // Whole-tensor offloading stages the entire (fp16) KV cache of the batch
  // through GPU memory during attention, so the cache of *all* layers at
  // full sequence length bounds the batch — unlike partial offloading,
  // which only double-buffers one layer. A 10% capacity reserve covers
  // allocator fragmentation and framework buffers.
  const double resident =
      model::total_weight_bytes(spec, policy().weight_bits);
  const double reserve = 0.10 * platform.gpu.mem_capacity;
  const double usable = platform.gpu.mem_capacity - resident - reserve;
  LMO_CHECK_MSG(usable > 0.0,
                "ZeRO-Inference cannot hold " + spec.name +
                    " weights on this GPU even 4-bit quantized");

  const double seq = static_cast<double>(shape.prompt_len + shape.gen_len);
  const double per_seq_kv = 2.0 * seq * static_cast<double>(spec.hidden) *
                            static_cast<double>(spec.num_layers) * 2.0;
  const double per_seq_act =
      4.0 * static_cast<double>(spec.hidden) * 2.0;
  const auto limit =
      static_cast<std::int64_t>(usable / (per_seq_kv + per_seq_act));
  LMO_CHECK_MSG(limit >= 1, "ZeRO-Inference cannot fit batch 1 for " +
                                spec.name);

  std::int64_t batch = 1;
  while (batch * 2 <= std::min(limit, max_batch)) batch *= 2;
  return batch;
}

SimulationReport ZeroInference::run(const model::ModelSpec& spec,
                                    const model::Workload& shape,
                                    const hw::Platform& platform) {
  return run_with_batch(spec, shape,
                        max_feasible_batch(spec, shape, platform), platform);
}

SimulationReport ZeroInference::run_with_batch(const model::ModelSpec& spec,
                                               const model::Workload& shape,
                                               std::int64_t batch,
                                               const hw::Platform& platform) {
  model::Workload w = shape;
  w.gpu_batch = batch;
  w.num_batches = 1;  // no zig-zag blocking
  return simulate(spec, w, policy(), platform, kName);
}

}  // namespace lmo::sched
