#include "lmo/sched/schedule_builder.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "lmo/perfmodel/estimator.hpp"
#include "lmo/perfmodel/quant_model.hpp"
#include "lmo/util/check.hpp"

namespace lmo::sched {
namespace {

using model::ModelSpec;
using model::Workload;
using perfmodel::Policy;
using sim::TaskId;

double roofline(double flops, double bytes, double flop_rate,
                double byte_rate) {
  return std::max(flops / flop_rate, bytes / byte_rate);
}

/// Emits the decode-step and prefill task groups; owns the engine and the
/// bookkeeping shared between them.
class Builder {
 public:
  Builder(const ModelSpec& spec, const Workload& w, const Policy& policy,
          const hw::Platform& platform, bool per_layer_weights = false)
      : spec_(spec),
        w_(w),
        policy_(policy),
        platform_(platform),
        per_layer_weights_(per_layer_weights) {
    h2d_ = engine_.add_resource("h2d");
    d2h_ = engine_.add_resource("d2h");
    gpu_ = engine_.add_resource("gpu");
    cpu_ = engine_.add_resource("cpu");
    disk_ = engine_.add_resource("disk");
    sync_overhead_ = platform.eff.task_overhead *
                     (policy.parallelism_control ? 1.0 : 1.6) *
                     static_cast<double>(w.num_batches);
  }

  void build_prefill() {
    const double compute = model::layer_prefill_flops(spec_, w_) /
                           platform_.gpu_matmul_flops();
    const double store_fraction =
        policy_.attention_on_cpu ? 1.0 : (1.0 - policy_.cache_on_gpu);
    const double kv_bytes =
        model::pf_kv_cache_bytes(spec_, w_, policy_.kv_bits) * store_fraction;

    const double disk_stream =
        model::layer_weight_bytes(spec_, policy_.weight_bits) *
        policy_.weights_on_disk;
    for (std::int64_t j = 0; j < spec_.num_layers; ++j) {
      const std::string tag = layer_tag(/*t=*/0, j);
      std::vector<TaskId> lw_deps = deps_after_sync(/*prefetch=*/true);
      if (disk_stream > 0.0) {
        lw_deps.push_back(
            add(disk_, "disk_read", tag,
                platform_.disk_to_cpu.transfer_seconds(disk_stream),
                deps_after_sync(true)));
      }
      const double weight_stream = weight_stream_bytes(j);
      const TaskId lw = add(h2d_, "prefill_load_weight", tag,
                            weight_stream / platform_.h2d_bw(), lw_deps);
      counters_.add(sim::channel::kH2DWeights, weight_stream);

      std::vector<TaskId> compute_deps = deps_after_sync(false);
      compute_deps.push_back(lw);
      const TaskId pf =
          add(gpu_, "prefill_compute", tag, compute, compute_deps);

      TaskId store_dep = pf;
      if (policy_.kv_quantized()) {
        store_dep = add(gpu_, "quantize", tag,
                        perfmodel::quan_pf_cache_seconds(
                            spec_, w_, policy_.kv_bits, platform_),
                        {pf});
      }
      TaskId last = store_dep;
      if (kv_bytes > 0.0) {
        last = add(d2h_, "prefill_store_cache", tag,
                   kv_bytes / platform_.d2h_bw(), {store_dep});
        counters_.add(sim::channel::kD2HCache, kv_bytes);
      }
      finish_layer_with_sync(tag, {last, pf});
    }
    prefill_task_count_ = engine_.task_count();
  }

  void build_decode_step(std::int64_t t) {
    for (std::int64_t j = 0; j < spec_.num_layers; ++j) {
      const std::string tag = layer_tag(t, j);
      if (policy_.attention_on_cpu) {
        build_cpu_attention_layer(t, j, tag);
      } else {
        build_gpu_attention_layer(t, j, tag);
      }
    }
  }

  /// The literal Algorithm 1: per (step, layer, batch) task groups. Weight
  /// transfers are chunked per batch (Alg. 1 issues load_weight inside the
  /// k-loop), the KV cache and activations are per-batch buffers, and the
  /// per-layer synchronize() closes the k-loop.
  void build_decode_step_per_batch(std::int64_t t) {
    const std::int64_t nb = w_.num_batches;
    if (prev_store_cache_.empty()) {
      prev_store_cache_.assign(
          static_cast<std::size_t>(spec_.num_layers),
          std::vector<TaskId>(static_cast<std::size_t>(nb),
                              sim::kInvalidTask));
    }
    const double inv_nb = 1.0 / static_cast<double>(nb);
    // Per-batch volumes and durations: the block's per-layer quantities
    // split evenly over its batches.
    const double weight_chunk_bytes =
        model::layer_weight_bytes(spec_, policy_.weight_bits) *
        (1.0 - policy_.weights_on_gpu) * inv_nb;
    const double act_bytes = model::activation_bytes(spec_, w_, 16) * inv_nb;
    const double per_batch_overhead =
        platform_.eff.task_overhead *
        (policy_.parallelism_control ? 1.0 : 1.6);

    for (std::int64_t j = 0; j < spec_.num_layers; ++j) {
      std::vector<TaskId> layer_done;
      for (std::int64_t k = 0; k < nb; ++k) {
        const std::string tag = "[t=" + std::to_string(t) +
                                ",l=" + std::to_string(j) +
                                ",b=" + std::to_string(k) + "]";
        // load_weight(i, j, k): this batch's chunk of the layer weights.
        TaskId lw = sim::kInvalidTask;
        if (weight_chunk_bytes > 0.0) {
          lw = add(h2d_, "load_weight", tag,
                   weight_chunk_bytes / platform_.h2d_bw(),
                   deps_after_sync(true));
          counters_.add(sim::channel::kH2DWeights, weight_chunk_bytes);
          if (policy_.weights_quantized()) {
            lw = add(gpu_, "dequantize", tag,
                     perfmodel::dequan_wgt_seconds(
                         spec_, (1.0 - policy_.weights_on_gpu) * inv_nb,
                         policy_.weight_bits, platform_),
                     {lw});
          }
        }

        if (policy_.attention_on_cpu) {
          layer_done.push_back(
              per_batch_cpu_attention(t, k, tag, lw, act_bytes));
        } else {
          layer_done.push_back(
              per_batch_gpu_attention(t, j, k, tag, lw, inv_nb));
        }
      }
      // synchronize() after the k-loop (Alg. 1 line 18).
      const TaskId sync =
          engine_.add_task("sync" + layer_tag(t, j), "sync", gpu_,
                           per_batch_overhead *
                               static_cast<double>(nb),
                           layer_done);
      prev_prev_sync_ = prev_sync_;
      prev_sync_ = sync;
    }
  }

  void set_fault_model(const sim::FaultModel& model) {
    engine_.set_fault_model(model);
  }

  SimulationReport finish(const std::string& framework) {
    SimulationReport report;
    report.framework = framework;
    report.policy = policy_;
    report.workload = w_;
    report.run = engine_.run();
    report.counters = counters_;

    // Prefill/decode split: prefill tasks were added first.
    double prefill_end = 0.0;
    for (std::size_t i = 0; i < prefill_task_count_; ++i) {
      prefill_end = std::max(prefill_end, report.run.tasks[i].finish);
    }
    report.prefill_seconds = prefill_end;
    report.total_seconds = report.run.makespan;
    report.decode_seconds = report.total_seconds - prefill_end;
    return report;
  }

 private:
  TaskId add(sim::ResourceId resource, const std::string& category,
             const std::string& tag, double duration,
             const std::vector<TaskId>& deps) {
    return engine_.add_task(category + tag, category, resource, duration,
                            deps);
  }

  static std::string layer_tag(std::int64_t t, std::int64_t j) {
    return "[t=" + std::to_string(t) + ",l=" + std::to_string(j) + "]";
  }

  /// Dependencies implementing the Algorithm-1 per-layer barrier: compute
  /// tasks wait for the previous layer's synchronize(); load tasks may
  /// prefetch one layer ahead (Alg. 1 line 7 loads layer j+1's weights
  /// during layer j), so they wait on the sync two layers back.
  std::vector<TaskId> deps_after_sync(bool prefetch) const {
    const TaskId dep = prefetch ? prev_prev_sync_ : prev_sync_;
    if (dep == sim::kInvalidTask) return {};
    return {dep};
  }

  void finish_layer_with_sync(const std::string& tag,
                              std::vector<TaskId> deps) {
    deps.erase(std::remove(deps.begin(), deps.end(), sim::kInvalidTask),
               deps.end());
    const TaskId sync = add(gpu_, "sync", tag, sync_overhead_, deps);
    prev_prev_sync_ = prev_sync_;
    prev_sync_ = sync;
  }

  void build_cpu_attention_layer(std::int64_t t, std::int64_t j,
                                 const std::string& tag) {
    // Weights for the GPU-side MLP still stream in.
    const TaskId lw = add_load_weight(tag, j);
    const TaskId dw = add_weight_dequant(tag, lw);

    // Hidden states hop to the CPU for attention, then back for the MLP.
    const double act_bytes = model::activation_bytes(spec_, w_, 16);
    const TaskId act_down =
        add(d2h_, "store_activation", tag, act_bytes / platform_.d2h_bw(),
            deps_after_sync(false));
    counters_.add(sim::channel::kD2HActivation, act_bytes);

    // Attention scans expanded (fp16-equivalent) data; compression never
    // shrinks the CPU traffic (paper Observation 1). Under the hybrid
    // split the CPU covers only the host-resident cache share; the GPU
    // slice is added to the GPU attention task below.
    const double cpu_share =
        policy_.hybrid_attention ? 1.0 - policy_.cache_on_gpu : 1.0;
    std::vector<TaskId> attn_deps = {act_down};
    double attn_time =
        roofline(model::attention_score_flops(spec_, w_, t) * cpu_share,
                 model::attention_kv_bytes_touched(spec_, w_, t, 16) *
                     cpu_share,
                 platform_.cpu_matmul_flops(),
                 platform_.cpu_attention_bw(policy_.parallelism_control));
    if (policy_.kv_quantized()) {
      const TaskId dq =
          add(cpu_, "dequantize", tag,
              perfmodel::dequan_old_cache_seconds(
                  spec_, w_, t, policy_.kv_bits, /*on_cpu=*/true, platform_),
              deps_after_sync(false));
      attn_deps.push_back(dq);
    }
    const TaskId attn =
        add(cpu_, "compute_attention", tag, attn_time, attn_deps);
    if (policy_.kv_quantized()) {
      add(cpu_, "quantize", tag,
          perfmodel::quan_new_cache_seconds(spec_, w_, policy_.kv_bits,
                                            /*on_cpu=*/true, platform_),
          {attn});
    }

    const TaskId act_up = add(h2d_, "load_activation", tag,
                              act_bytes / platform_.h2d_bw(), {attn});
    counters_.add(sim::channel::kH2DActivation, act_bytes);

    // Hybrid: the GPU scans its resident cache slice concurrently with the
    // CPU scan; the merged softmax feeds the MLP.
    TaskId gpu_attn = sim::kInvalidTask;
    if (policy_.hybrid_attention && policy_.cache_on_gpu > 0.0) {
      const double gpu_share = policy_.cache_on_gpu;
      gpu_attn = add(
          gpu_, "compute_attention", tag,
          roofline(model::attention_score_flops(spec_, w_, t) * gpu_share,
                   model::attention_kv_bytes_touched(spec_, w_, t, 16) *
                       gpu_share,
                   platform_.gpu_matmul_flops(), platform_.gpu_mem_bw()),
          deps_after_sync(false));
    }

    std::vector<TaskId> mlp_deps = {act_up};
    if (lw != sim::kInvalidTask) mlp_deps.push_back(lw);
    if (dw != sim::kInvalidTask) mlp_deps.push_back(dw);
    if (gpu_attn != sim::kInvalidTask) mlp_deps.push_back(gpu_attn);
    const TaskId mlp = add(gpu_, "compute_mlp", tag, mlp_seconds(), mlp_deps);
    finish_layer_with_sync(tag, {mlp, attn});
  }

  void build_gpu_attention_layer(std::int64_t t, std::int64_t j,
                                 const std::string& tag) {
    const TaskId lw = add_load_weight(tag, j);
    const TaskId dw = add_weight_dequant(tag, lw);

    const double stream_fraction = 1.0 - policy_.cache_on_gpu;
    TaskId cache_ready = sim::kInvalidTask;
    if (stream_fraction > 0.0) {
      const double cache_bytes =
          model::kv_cache_bytes_at(spec_, w_, t, policy_.kv_bits) *
          stream_fraction;
      // Per-(layer, batch) pinned-buffer staging: the host-side cache is
      // one buffer per batch, so each layer load is num_batches chunked
      // transfers, not one contiguous copy.
      const double chunking = platform_.eff.cache_chunk_overhead *
                              static_cast<double>(w_.num_batches);
      const TaskId lc = add(h2d_, "load_cache", tag,
                            cache_bytes / platform_.h2d_bw() + chunking,
                            deps_after_sync(true));
      counters_.add(sim::channel::kH2DCache, cache_bytes);
      cache_ready = lc;
    }
    if (policy_.kv_quantized()) {
      // The whole compressed cache — streamed or resident — expands on the
      // GPU before the attention kernels read it (Eq. 6).
      cache_ready = add(gpu_, "dequantize", tag,
                        perfmodel::dequan_old_cache_seconds(
                            spec_, w_, t, policy_.kv_bits,
                            /*on_cpu=*/false, platform_),
                        cache_ready == sim::kInvalidTask
                            ? deps_after_sync(false)
                            : std::vector<TaskId>{cache_ready});
    }

    // Spilled activations of waiting batches come back before compute.
    const double act_fraction = 1.0 - policy_.activations_on_gpu;
    TaskId act_in = sim::kInvalidTask;
    if (act_fraction > 0.0) {
      const double act_bytes =
          model::activation_bytes(spec_, w_, 16) * act_fraction;
      act_in = add(h2d_, "load_activation", tag,
                   act_bytes / platform_.h2d_bw(), deps_after_sync(true));
      counters_.add(sim::channel::kH2DActivation, act_bytes);
    }

    std::vector<TaskId> attn_deps = deps_after_sync(false);
    if (lw != sim::kInvalidTask) attn_deps.push_back(lw);
    if (dw != sim::kInvalidTask) attn_deps.push_back(dw);
    if (cache_ready != sim::kInvalidTask) attn_deps.push_back(cache_ready);
    if (act_in != sim::kInvalidTask) attn_deps.push_back(act_in);
    const double attn_time =
        roofline(model::attention_score_flops(spec_, w_, t),
                 model::attention_kv_bytes_touched(spec_, w_, t, 16),
                 platform_.gpu_matmul_flops(), platform_.gpu_mem_bw());
    const TaskId attn =
        add(gpu_, "compute_attention", tag, attn_time, attn_deps);

    // New KV re-compressed (Eq. 7) and, when streaming, sent back to host.
    TaskId store_ready = attn;
    if (policy_.kv_quantized()) {
      store_ready = add(gpu_, "quantize", tag,
                        perfmodel::quan_new_cache_seconds(
                            spec_, w_, policy_.kv_bits, /*on_cpu=*/false,
                            platform_),
                        {attn});
    }
    if (stream_fraction > 0.0) {
      const double new_bytes =
          model::new_kv_cache_bytes(spec_, w_, policy_.kv_bits) *
          stream_fraction;
      add(d2h_, "store_cache", tag, new_bytes / platform_.d2h_bw(),
          {store_ready});
      counters_.add(sim::channel::kD2HCache, new_bytes);
    }
    if (act_fraction > 0.0) {
      const double act_bytes =
          model::activation_bytes(spec_, w_, 16) * act_fraction;
      add(d2h_, "store_activation", tag, act_bytes / platform_.d2h_bw(),
          {attn});
      counters_.add(sim::channel::kD2HActivation, act_bytes);
    }

    const TaskId mlp = add(gpu_, "compute_mlp", tag, mlp_seconds(), {attn});
    finish_layer_with_sync(tag, {mlp});
  }

  /// One batch's CPU-attention path: activations hop down, the batch's
  /// share of the cache scan runs on the CPU, activations hop back up and
  /// the GPU-side MLP chunk completes. Returns the batch's terminal task.
  TaskId per_batch_cpu_attention(std::int64_t t, std::int64_t k,
                                 const std::string& tag, TaskId lw,
                                 double act_bytes) {
    const double inv_nb = 1.0 / static_cast<double>(w_.num_batches);
    const TaskId act_down =
        add(d2h_, "store_activation", tag, act_bytes / platform_.d2h_bw(),
            deps_after_sync(false));
    counters_.add(sim::channel::kD2HActivation, act_bytes);

    std::vector<TaskId> attn_deps = {act_down};
    double attn_time =
        roofline(model::attention_score_flops(spec_, w_, t) * inv_nb,
                 model::attention_kv_bytes_touched(spec_, w_, t, 16) * inv_nb,
                 platform_.cpu_matmul_flops(),
                 platform_.cpu_attention_bw(policy_.parallelism_control));
    if (policy_.kv_quantized()) {
      attn_deps.push_back(
          add(cpu_, "dequantize", tag,
              perfmodel::dequan_old_cache_seconds(spec_, w_, t,
                                                  policy_.kv_bits,
                                                  /*on_cpu=*/true,
                                                  platform_) *
                  inv_nb,
              deps_after_sync(false)));
    }
    const TaskId attn =
        add(cpu_, "compute_attention", tag, attn_time, attn_deps);
    if (policy_.kv_quantized()) {
      add(cpu_, "quantize", tag,
          perfmodel::quan_new_cache_seconds(spec_, w_, policy_.kv_bits,
                                            /*on_cpu=*/true, platform_) *
              inv_nb,
          {attn});
    }
    const TaskId act_up = add(h2d_, "load_activation", tag,
                              act_bytes / platform_.h2d_bw(), {attn});
    counters_.add(sim::channel::kH2DActivation, act_bytes);
    std::vector<TaskId> mlp_deps = {act_up};
    if (lw != sim::kInvalidTask) mlp_deps.push_back(lw);
    (void)k;
    return add(gpu_, "compute_mlp", tag, mlp_seconds() * inv_nb, mlp_deps);
  }

  /// One batch's GPU-attention path: its cache slice streams in (after
  /// last step's store of the same batch), attention + MLP run on the GPU,
  /// the new KV goes back. Returns the batch's terminal task.
  TaskId per_batch_gpu_attention(std::int64_t t, std::int64_t j,
                                 std::int64_t k, const std::string& tag,
                                 TaskId lw, double inv_nb) {
    const double stream_fraction = 1.0 - policy_.cache_on_gpu;
    auto& prev_store = prev_store_cache_[static_cast<std::size_t>(j)]
                                        [static_cast<std::size_t>(k)];
    TaskId cache_ready = sim::kInvalidTask;
    if (stream_fraction > 0.0) {
      const double cache_bytes =
          model::kv_cache_bytes_at(spec_, w_, t, policy_.kv_bits) *
          stream_fraction * inv_nb;
      std::vector<TaskId> lc_deps = deps_after_sync(true);
      if (prev_store != sim::kInvalidTask) lc_deps.push_back(prev_store);
      cache_ready = add(h2d_, "load_cache", tag,
                        cache_bytes / platform_.h2d_bw() +
                            platform_.eff.cache_chunk_overhead,
                        lc_deps);
      counters_.add(sim::channel::kH2DCache, cache_bytes);
    }
    if (policy_.kv_quantized()) {
      cache_ready = add(gpu_, "dequantize", tag,
                        perfmodel::dequan_old_cache_seconds(
                            spec_, w_, t, policy_.kv_bits,
                            /*on_cpu=*/false, platform_) *
                            inv_nb,
                        cache_ready == sim::kInvalidTask
                            ? deps_after_sync(false)
                            : std::vector<TaskId>{cache_ready});
    }
    std::vector<TaskId> attn_deps = deps_after_sync(false);
    if (lw != sim::kInvalidTask) attn_deps.push_back(lw);
    if (cache_ready != sim::kInvalidTask) attn_deps.push_back(cache_ready);
    const double attn_time =
        roofline(model::attention_score_flops(spec_, w_, t) * inv_nb,
                 model::attention_kv_bytes_touched(spec_, w_, t, 16) * inv_nb,
                 platform_.gpu_matmul_flops(), platform_.gpu_mem_bw());
    const TaskId attn =
        add(gpu_, "compute_attention", tag, attn_time, attn_deps);

    TaskId store_ready = attn;
    if (policy_.kv_quantized()) {
      store_ready = add(gpu_, "quantize", tag,
                        perfmodel::quan_new_cache_seconds(
                            spec_, w_, policy_.kv_bits, /*on_cpu=*/false,
                            platform_) *
                            inv_nb,
                        {attn});
    }
    if (stream_fraction > 0.0) {
      const double new_bytes =
          model::new_kv_cache_bytes(spec_, w_, policy_.kv_bits) *
          stream_fraction * inv_nb;
      prev_store = add(d2h_, "store_cache", tag,
                       new_bytes / platform_.d2h_bw(), {store_ready});
      counters_.add(sim::channel::kD2HCache, new_bytes);
    }
    return add(gpu_, "compute_mlp", tag, mlp_seconds() * inv_nb, {attn});
  }

  /// Streamed weight bytes for layer `j` under the placement mode.
  double weight_stream_bytes(std::int64_t j) const {
    const double layer_bytes =
        model::layer_weight_bytes(spec_, policy_.weight_bits);
    if (!per_layer_weights_) {
      return layer_bytes * (1.0 - policy_.weights_on_gpu);
    }
    const auto resident = static_cast<std::int64_t>(
        policy_.weights_on_gpu * static_cast<double>(spec_.num_layers) +
        0.5);
    return j < resident ? 0.0 : layer_bytes;
  }

  TaskId add_load_weight(const std::string& tag, std::int64_t j) {
    const double bytes = weight_stream_bytes(j);
    if (bytes == 0.0) {
      // Layer fully resident: compute depends only on the layer barrier.
      return sim::kInvalidTask;
    }
    // Disk-tier share reads from disk into host staging first; the H2D
    // transfer of those bytes then depends on the read.
    std::vector<TaskId> deps = deps_after_sync(true);
    if (policy_.weights_on_disk > 0.0) {
      const double disk_bytes =
          model::layer_weight_bytes(spec_, policy_.weight_bits) *
          policy_.weights_on_disk;
      deps.push_back(add(disk_, "disk_read", tag,
                         platform_.disk_to_cpu.transfer_seconds(disk_bytes),
                         deps_after_sync(true)));
    }
    const TaskId lw =
        add(h2d_, "load_weight", tag, bytes / platform_.h2d_bw(), deps);
    counters_.add(sim::channel::kH2DWeights, bytes);
    return lw;
  }

  /// GPU-side dequantization after a compressed weight load; also covers
  /// ZeRO-style resident compression. Returns kInvalidTask when no
  /// dequantization is needed.
  TaskId add_weight_dequant(const std::string& tag, TaskId lw) {
    if (lw == sim::kInvalidTask && !policy_.resident_weights_compressed) {
      return sim::kInvalidTask;  // nothing streamed, nothing to expand
    }
    double seconds = 0.0;
    if (policy_.weights_quantized()) {
      seconds += perfmodel::dequan_wgt_seconds(
          spec_, 1.0 - policy_.weights_on_gpu, policy_.weight_bits,
          platform_);
      if (policy_.resident_weights_compressed) {
        seconds += perfmodel::dequan_wgt_seconds(
            spec_, policy_.weights_on_gpu, policy_.weight_bits, platform_);
      }
    }
    if (seconds == 0.0) return sim::kInvalidTask;
    return add(gpu_, "dequantize", tag, seconds,
               lw == sim::kInvalidTask ? std::vector<TaskId>{}
                                       : std::vector<TaskId>{lw});
  }

  /// GPU-side dense work that never moves: MLP plus the attention
  /// projections (weight GEMMs).
  double mlp_seconds() const {
    const double mlp_bytes =
        static_cast<double>(spec_.mlp_weights_per_layer()) * 2.0;
    const double proj_bytes =
        static_cast<double>(spec_.attention_weights_per_layer()) * 2.0;
    return roofline(model::mlp_decode_flops(spec_, w_), mlp_bytes,
                    platform_.gpu_matmul_flops(), platform_.gpu_mem_bw()) +
           roofline(model::attention_projection_flops(spec_, w_), proj_bytes,
                    platform_.gpu_matmul_flops(), platform_.gpu_mem_bw());
  }

  const ModelSpec& spec_;
  const Workload& w_;
  const Policy& policy_;
  const hw::Platform& platform_;
  bool per_layer_weights_ = false;

  sim::Engine engine_;
  sim::Counters counters_;
  sim::ResourceId h2d_{}, d2h_{}, gpu_{}, cpu_{}, disk_{};
  TaskId prev_sync_ = sim::kInvalidTask;
  TaskId prev_prev_sync_ = sim::kInvalidTask;
  double sync_overhead_ = 0.0;
  std::size_t prefill_task_count_ = 0;
  /// Per-batch mode: last store_cache task per (layer, batch).
  std::vector<std::vector<TaskId>> prev_store_cache_;
};

}  // namespace

SimulationReport simulate(const ModelSpec& spec, const Workload& workload,
                          const Policy& policy, const hw::Platform& platform,
                          const std::string& framework,
                          const BuildOptions& options) {
  spec.validate();
  workload.validate();
  policy.validate();

  const auto est = perfmodel::estimate(spec, workload, policy, platform);
  LMO_CHECK_MSG(est.fits, "policy does not fit platform memory: " +
                              policy.to_string() + " (" +
                              est.infeasible_reason + ")");

  Builder builder(spec, workload, policy, platform,
                  options.per_layer_weights);
  if (options.include_prefill) builder.build_prefill();
  const auto emit_step = [&](std::int64_t t) {
    if (options.granularity == Granularity::kPerBatch) {
      builder.build_decode_step_per_batch(t);
    } else {
      builder.build_decode_step(t);
    }
  };
  if (options.all_steps) {
    for (std::int64_t t = 1; t < workload.gen_len; ++t) emit_step(t);
  } else {
    emit_step(options.single_step);
  }

  if (options.fault_model) builder.set_fault_model(*options.fault_model);

  SimulationReport report = builder.finish(framework);
  report.init_seconds = est.t_init;
  report.gpu_bytes = est.gpu_bytes_needed;
  report.cpu_bytes = est.cpu_bytes_needed;
  // Total consumption across both tiers — the paper's "mem" column.
  report.memory_bytes = est.gpu_bytes_needed + est.cpu_bytes_needed;

  const double tokens =
      options.all_steps
          ? static_cast<double>(workload.total_tokens())
          : static_cast<double>(workload.block_size());
  LMO_CHECK_GT(report.total_seconds, 0.0);
  report.throughput = tokens / report.total_seconds;
  return report;
}

}  // namespace lmo::sched
