// Offloading-policy search over the {wg, cg, hg, attention placement,
// quantization} space. FlexGen's linear-programming search and LM-Offload's
// quantization-aware search are both instances of this enumeration — they
// differ only in which dimensions are open and which cost model scores a
// candidate (paper §2.2 vs §3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/perfmodel/estimator.hpp"
#include "lmo/perfmodel/policy.hpp"

namespace lmo::sched {

struct SearchSpace {
  std::vector<double> wg_choices;
  std::vector<double> cg_choices;
  std::vector<double> hg_choices;
  /// Disk-spill fractions for weights (three-tier hierarchy); candidates
  /// with wg + wd > 1 are skipped.
  std::vector<double> wd_choices = {0.0};
  std::vector<bool> attention_on_cpu_choices;
  std::vector<int> weight_bits_choices;
  std::vector<int> kv_bits_choices;
  bool resident_weights_compressed = false;
  bool parallelism_control = false;
  /// Allow hybrid attention candidates (CPU attention + GPU-resident cache
  /// slice scanned in place) — FlexGen's fractional-cache design.
  bool allow_hybrid_attention = false;

  /// FlexGen's space: placement percentages and attention offloading only,
  /// no quantization (paper §2.2: its LP does not model compression).
  static SearchSpace flexgen();
  /// LM-Offload's space: adds 4/8-bit weight and KV quantization.
  static SearchSpace lm_offload(bool parallelism_control = true);
};

struct SearchResult {
  perfmodel::Policy best;
  perfmodel::Estimate estimate;  ///< estimate of `best` under the scoring model
  std::size_t evaluated = 0;
  std::size_t feasible = 0;
};

/// Enumerate the space, score with `estimate()` under `options`, return the
/// feasible candidate with the highest estimated throughput (deterministic
/// tie-break: lower GPU footprint, then enumeration order).
SearchResult search_policy(const model::ModelSpec& spec,
                           const model::Workload& workload,
                           const hw::Platform& platform,
                           const SearchSpace& space,
                           const perfmodel::EstimatorOptions& options = {});

/// Stochastic alternative to the exhaustive enumeration: seeded
/// random-restart hill climbing over the same discrete space. Scales to
/// spaces where full enumeration is too slow (fine placement grids, many
/// bit widths); deterministic for a fixed seed. Typically lands within a
/// few percent of the exhaustive optimum at a fraction of the
/// evaluations.
SearchResult search_policy_stochastic(
    const model::ModelSpec& spec, const model::Workload& workload,
    const hw::Platform& platform, const SearchSpace& space,
    const perfmodel::EstimatorOptions& options = {}, int restarts = 8,
    int steps_per_restart = 60, std::uint64_t seed = 1);

struct BlockSearchResult {
  model::Workload workload;  ///< chosen (gpu_batch, num_batches)
  SearchResult search;       ///< best policy at that block
  std::size_t blocks_tried = 0;
  std::size_t blocks_feasible = 0;
};

/// Joint search over zig-zag block size AND policy: the full version of
/// FlexGen's LP (which optimizes the block too, not just placement).
/// `shape` supplies prompt_len/gen_len; its batch fields are ignored.
/// Candidate blocks are gpu_batch ∈ {16, 32, 64} × num_batches ∈
/// {1, 2, 4, ..., max_batches}. Throws when no (block, policy) fits.
BlockSearchResult search_block_size(
    const model::ModelSpec& spec, const model::Workload& shape,
    const hw::Platform& platform, const SearchSpace& space,
    const perfmodel::EstimatorOptions& options = {},
    std::int64_t max_batches = 32);

}  // namespace lmo::sched
