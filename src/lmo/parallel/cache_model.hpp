// Last-level-cache miss model (paper Table 5).
//
// The decode-phase CPU work (attention scan + KV append + staging copies)
// streams far more data than the LLC holds, so nearly every touched line
// misses; thread oversubscription multiplies misses further by evicting
// co-running operators' working sets (the thrash factors below, calibrated
// to the paper's perf-counter measurements: load misses 10B→6B and store
// misses 19B→12B for OPT-30B, n=8, under default vs controlled threading).
//
// Store misses exceed load misses because framework-style CPU attention
// materializes temporaries: the KV concatenation rewrites the whole cache,
// and write-allocate turns those stores into additional line fills.
#pragma once

#include <cstdint>

#include "lmo/hw/platform.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/model/memory.hpp"

namespace lmo::parallel {

struct CacheMissParams {
  double line_bytes = 64.0;
  /// Thrash multipliers on perfectly-streamed misses.
  double load_thrash_default = 1.53;
  double load_thrash_controlled = 0.92;
  double store_thrash_default = 2.90;
  double store_thrash_controlled = 1.82;
};

struct CacheMissEstimate {
  double load_misses = 0.0;
  double store_misses = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
};

/// Estimate LLC misses for a full decode run with attention offloaded to
/// the CPU (the configuration Table 5 measures).
CacheMissEstimate estimate_llc_misses(const model::ModelSpec& spec,
                                      const model::Workload& w, int kv_bits,
                                      bool parallelism_control,
                                      const CacheMissParams& params = {});

}  // namespace lmo::parallel
