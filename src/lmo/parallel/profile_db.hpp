// Offline profiling database (paper §4.2: "we use offline profiling and
// collect the execution times of those operations with various intra-op
// parallelism ... the profiling results are repeatedly used during the
// online LLM inference").
//
// Keys are (op name, intra-op threads). Two fill paths:
//   * from_scaling_model(): analytic fill for paper-scale experiments;
//   * measure(): run a real workload closure repeatedly on a ThreadPool and
//     record median wall time (used by the runtime at laptop scale).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "lmo/model/opgraph.hpp"
#include "lmo/parallel/scaling.hpp"

namespace lmo::parallel {

class ProfileDB {
 public:
  void record(const std::string& op_name, int intra_threads, double seconds);

  bool has(const std::string& op_name, int intra_threads) const;

  /// Exact lookup; throws CheckError when missing.
  double lookup(const std::string& op_name, int intra_threads) const;

  /// Lookup with fallback to the nearest profiled thread count.
  double lookup_nearest(const std::string& op_name, int intra_threads) const;

  std::size_t size() const { return table_.size(); }

  /// Fill from the analytic scaling model for every op in `graph` and every
  /// thread count in `thread_counts` (assuming the op runs alone).
  static ProfileDB from_scaling_model(const model::OpGraph& graph,
                                      const ThreadScalingModel& model,
                                      const std::vector<int>& thread_counts);

  /// Measure `body` (already parameterized by thread count) `repeats` times
  /// and record the median.
  void measure(const std::string& op_name, int intra_threads, int repeats,
               const std::function<void()>& body);

 private:
  std::map<std::pair<std::string, int>, double> table_;
};

}  // namespace lmo::parallel
