#include "lmo/parallel/interop.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "lmo/util/check.hpp"

namespace lmo::parallel {

InterOpStats run_graph(const model::OpGraph& graph, ThreadPool& pool,
                       int inter_op_parallelism,
                       const std::function<void(model::OpId)>& body) {
  LMO_CHECK_GE(inter_op_parallelism, 1);
  LMO_CHECK(graph.is_acyclic());
  const std::size_t n = graph.size();

  std::mutex mutex;
  std::condition_variable done_cv;
  std::vector<int> remaining_deps(n, 0);
  std::vector<model::OpId> ready;
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t peak = 0;
  std::exception_ptr first_error;

  for (std::size_t i = 0; i < n; ++i) {
    remaining_deps[i] =
        static_cast<int>(graph.predecessors(static_cast<model::OpId>(i)).size());
    if (remaining_deps[i] == 0) ready.push_back(static_cast<model::OpId>(i));
  }

  // Launches as many ready ops as the admission limit allows. Called with
  // the mutex held.
  std::function<void(std::unique_lock<std::mutex>&)> pump =
      [&](std::unique_lock<std::mutex>& lock) {
        while (!ready.empty() &&
               in_flight < static_cast<std::size_t>(inter_op_parallelism) &&
               !first_error) {
          const model::OpId id = ready.back();
          ready.pop_back();
          ++in_flight;
          peak = std::max(peak, in_flight);
          lock.unlock();
          pool.submit([&, id] {
            std::exception_ptr error;
            try {
              body(id);
            } catch (...) {
              error = std::current_exception();
            }
            std::unique_lock<std::mutex> inner(mutex);
            --in_flight;
            ++completed;
            if (error && !first_error) first_error = error;
            if (!error) {
              for (model::OpId succ : graph.successors(id)) {
                if (--remaining_deps[static_cast<std::size_t>(succ)] == 0) {
                  ready.push_back(succ);
                }
              }
            }
            pump(inner);
            done_cv.notify_all();
            // `inner` unlocks on destruction; pump() re-acquires internally
            // only via this same path, so no deadlock.
          });
          lock.lock();
        }
      };

  {
    std::unique_lock<std::mutex> lock(mutex);
    pump(lock);
    done_cv.wait(lock, [&] {
      return (completed == n && in_flight == 0) ||
             (first_error && in_flight == 0);
    });
    if (first_error) std::rethrow_exception(first_error);
    LMO_CHECK_EQ(completed, n);
  }

  InterOpStats stats;
  stats.ops_executed = n;
  stats.peak_concurrency = peak;
  return stats;
}

}  // namespace lmo::parallel
