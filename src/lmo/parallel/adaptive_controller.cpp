#include "lmo/parallel/adaptive_controller.hpp"

#include <algorithm>
#include <cmath>

#include "lmo/sim/engine.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/validate.hpp"

namespace lmo::parallel {

void AdaptiveConfig::validate() const {
  util::Validate("AdaptiveConfig", [this](util::Validator& v) {
    v.ge("window_steps", window_steps, 1);
    v.ge("hysteresis", hysteresis, 0.0);
    v.lt("hysteresis", hysteresis, 1.0);
    v.ge("revert_margin", revert_margin, 0.0);
    v.ge("hold_windows", hold_windows, 0);
    v.in_unit("ema_alpha", ema_alpha);
    v.ge("max_threads", max_threads, 0);
  });
}

const char* to_string(ReplanAction action) {
  switch (action) {
    case ReplanAction::kHold:
      return "hold";
    case ReplanAction::kApply:
      return "apply";
    case ReplanAction::kRevert:
      return "revert";
  }
  LMO_UNREACHABLE("bad ReplanAction");
}

AdaptiveController::AdaptiveController(SearchInput believed,
                                       AdaptiveConfig config,
                                       telemetry::MetricsRegistry* metrics,
                                       telemetry::TraceRecorder* trace)
    : input_(std::move(believed)),
      config_(config),
      metrics_(metrics),
      trace_(trace) {
  config_.validate();
  if (config_.max_threads > 0) input_.max_threads = config_.max_threads;
  current_ = find_optimal_parallelism(input_);
}

bool AdaptiveController::same_config(const ParallelismPlan& a,
                                     const ParallelismPlan& b) {
  return a.intra_op_compute == b.intra_op_compute &&
         a.inter_op_compute == b.inter_op_compute && a.io_threads == b.io_threads;
}

void AdaptiveController::calibrate(const WindowSample& sample) {
  const double alpha = config_.ema_alpha;

  // Copy bandwidth: per I/O task that actually moved bytes, the achieved
  // rate divided by its thread allocation is a per-thread estimate; the
  // bytes-weighted mean across tasks feeds the EMA. When the link (not the
  // threads) was the bottleneck this under-estimates — acceptable, the
  // search's min(link, threads × bw) clamps either way.
  double weighted_bw = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    if (sample.io_bytes[i] <= 0.0 || sample.io_seconds[i] <= 0.0) continue;
    const double rate = sample.io_bytes[i] / sample.io_seconds[i];
    const double per_thread =
        rate / static_cast<double>(std::max(1, current_.io_threads[i]));
    weighted_bw += per_thread * sample.io_bytes[i];
    weight += sample.io_bytes[i];
  }
  if (weight > 0.0) {
    const double observed = weighted_bw / weight;
    input_.per_thread_copy_bw =
        copy_bw_observed_
            ? alpha * observed + (1.0 - alpha) * input_.per_thread_copy_bw
            : observed;
    copy_bw_observed_ = true;
  }

  // Compute scaling: ratio of measured per-step compute time to what the
  // analytic model predicts for the allocation that produced the sample.
  // Folded into a ProfileDB overlay (scaled_profiles) rather than mutating
  // the scaling params, so the search consumes it through its normal
  // profile path.
  if (sample.compute_seconds > 0.0 && sample.steps > 0) {
    const ParallelismPlan analytic =
        evaluate_parallelism(input_, current_.intra_op_compute,
                             current_.inter_op_compute, current_.io_threads);
    if (analytic.compute_seconds > 0.0) {
      const double observed_scale =
          (sample.compute_seconds / static_cast<double>(sample.steps)) /
          analytic.compute_seconds;
      compute_scale_ =
          alpha * observed_scale + (1.0 - alpha) * compute_scale_;
    }
  }
}

ProfileDB AdaptiveController::scaled_profiles() const {
  ProfileDB db;
  if (compute_scale_ == 1.0) return db;  // nothing observed yet
  const ThreadScalingModel scaling(input_.platform.cpu);
  const int budget =
      input_.max_threads > 0 ? input_.max_threads : input_.platform.cpu.cores;
  // Entries are normalized at the full thread budget: the search's profile
  // path reconstitutes op time as lookup(op, intra) × contention(total),
  // and every full Algorithm-3 allocation runs with total == budget (all
  // free threads go to the I/O tasks). Dividing the budget-pressure time by
  // the budget contention factor here makes that reconstruction *exact* for
  // those allocations — a solo-time profile would hide the fair-sharing
  // cost of oversubscription and bias the search toward it.
  const double norm = scaling.contention_factor(budget);
  for (std::size_t i = 0; i < input_.compute_graph.size(); ++i) {
    const model::OpNode& op =
        input_.compute_graph.node(static_cast<model::OpId>(i));
    for (int t = 1; t <= budget; ++t) {
      if (db.has(op.name, t)) continue;  // ops can repeat across layers
      db.record(op.name, t,
                scaling.op_seconds(op, t, budget) / norm * compute_scale_);
    }
  }
  return db;
}

ReplanDecision AdaptiveController::observe(const WindowSample& sample) {
  LMO_CHECK_GE(sample.steps, 1);
  ++windows_;
  calibrate(sample);

  ReplanDecision decision;
  double measured =
      sample.compute_seconds / static_cast<double>(sample.steps);
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    measured = std::max(
        measured, sample.io_seconds[i] / static_cast<double>(sample.steps));
  }
  decision.measured_t_gen = measured;

  const ProfileDB db = scaled_profiles();
  const ProfileDB* profiles = db.size() > 0 ? &db : nullptr;
  const ParallelismPlan current_eval =
      evaluate_parallelism(input_, current_.intra_op_compute,
                           current_.inter_op_compute, current_.io_threads,
                           profiles);

  if (hold_ > 0) {
    // Settling window after a plan change: observe (the EMAs above still
    // ran) but never change plans.
    --hold_;
    decision.action = ReplanAction::kHold;
    decision.plan = current_;
    decision.predicted_t_gen = current_eval.t_gen;
    publish(decision);
    return decision;
  }

  // Revert-on-regression: an applied plan must not run worse than the
  // measured baseline it was meant to beat.
  if (previous_.has_value() && baseline_measured_ > 0.0 &&
      measured > baseline_measured_ * (1.0 + config_.revert_margin)) {
    current_ = *previous_;
    previous_.reset();
    baseline_measured_ = 0.0;
    hold_ = config_.hold_windows;
    decision.action = ReplanAction::kRevert;
    decision.plan = current_;
    decision.predicted_t_gen =
        evaluate_parallelism(input_, current_.intra_op_compute,
                             current_.inter_op_compute, current_.io_threads,
                             profiles)
            .t_gen;
    publish(decision);
    return decision;
  }
  // The applied plan survived a full post-hold window: commit to it.
  previous_.reset();

  const ParallelismPlan candidate = find_optimal_parallelism(input_, profiles);
  if (!same_config(candidate, current_) &&
      candidate.t_gen < current_eval.t_gen * (1.0 - config_.hysteresis)) {
    previous_ = current_;
    baseline_measured_ = measured;
    current_ = candidate;
    hold_ = config_.hold_windows;
    decision.action = ReplanAction::kApply;
    decision.plan = current_;
    decision.predicted_t_gen = candidate.t_gen;
  } else {
    decision.action = ReplanAction::kHold;
    decision.plan = current_;
    decision.predicted_t_gen = current_eval.t_gen;
  }
  publish(decision);
  return decision;
}

void AdaptiveController::publish(const ReplanDecision& decision) {
  if (metrics_ != nullptr) {
    metrics_->counter("parallel.replan.attempts").add();
    switch (decision.action) {
      case ReplanAction::kApply:
        metrics_->counter("parallel.replan.applied").add();
        break;
      case ReplanAction::kRevert:
        metrics_->counter("parallel.replan.reverted").add();
        break;
      case ReplanAction::kHold:
        metrics_->counter("parallel.replan.held").add();
        break;
    }
    metrics_->gauge("parallel.threads.intra")
        .set(static_cast<double>(current_.intra_op_compute));
    metrics_->gauge("parallel.threads.inter")
        .set(static_cast<double>(current_.inter_op_compute));
    int io_total = 0;
    for (int t : current_.io_threads) io_total += t;
    metrics_->gauge("parallel.threads.io_total")
        .set(static_cast<double>(io_total));
    metrics_->gauge("parallel.replan.predicted_t_gen")
        .set(decision.predicted_t_gen);
    metrics_->gauge("parallel.replan.measured_t_gen")
        .set(decision.measured_t_gen);
    metrics_->gauge("parallel.calibration.copy_bw")
        .set(input_.per_thread_copy_bw);
    metrics_->gauge("parallel.calibration.compute_scale").set(compute_scale_);
  }
  if (trace_ != nullptr) {
    // Virtual timestamp = window index: a pure function of the sample
    // sequence, so two identical runs trace byte-identically.
    trace_->complete(std::string("parallel.replan:") + to_string(decision.action),
                     "parallel.replan", kParallelTracePid, 0,
                     static_cast<double>(windows_) * 1000.0, 0.0);
  }
}

namespace {

/// Schedule one window of `steps` decode blocks under `plan`, with task
/// durations taken from the ground-truth input, and collect the span
/// aggregate the runtime would read off its TraceRecorder — here through
/// Engine::set_task_observer, the DES mirror of that feed.
WindowSample measure_window(const SearchInput& truth,
                            const ParallelismPlan& plan, int steps) {
  const ParallelismPlan actual =
      evaluate_parallelism(truth, plan.intra_op_compute, plan.inter_op_compute,
                           plan.io_threads);
  sim::Engine engine;
  WindowSample sample;
  sample.steps = steps;
  engine.set_task_observer([&sample](const sim::TaskRecord& rec) {
    if (rec.category == "compute") {
      sample.compute_seconds += rec.duration;
      return;
    }
    for (std::size_t i = 0; i < kNumIoTasks; ++i) {
      if (rec.category == kIoTaskNames[i]) {
        sample.io_seconds[i] += rec.duration;
        return;
      }
    }
  });

  const auto compute_res = engine.add_resource("compute", 1);
  std::array<sim::ResourceId, kNumIoTasks> io_res;
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    io_res[i] = engine.add_resource(kIoTaskNames[i], 1);
  }
  for (int s = 0; s < steps; ++s) {
    engine.add_task("compute[s=" + std::to_string(s) + "]", "compute",
                    compute_res, actual.compute_seconds);
    for (std::size_t i = 0; i < kNumIoTasks; ++i) {
      if (truth.io_bytes[i] <= 0.0) continue;
      engine.add_task(std::string(kIoTaskNames[i]) +
                          "[s=" + std::to_string(s) + "]",
                      kIoTaskNames[i], io_res[i], actual.io_seconds[i]);
      sample.io_bytes[i] += truth.io_bytes[i];
    }
  }
  engine.run();
  return sample;
}

/// Per-step generation time a fixed plan achieves when the platform's true
/// parameters are `truth`.
double true_t_gen(const SearchInput& truth, const ParallelismPlan& plan) {
  return evaluate_parallelism(truth, plan.intra_op_compute,
                              plan.inter_op_compute, plan.io_threads)
      .t_gen;
}

}  // namespace

AdaptiveSimResult simulate_adaptive(const SearchInput& believed,
                                    const SearchInput& truth,
                                    const AdaptiveConfig& config, int windows,
                                    telemetry::MetricsRegistry* metrics,
                                    telemetry::TraceRecorder* trace) {
  LMO_CHECK_GE(windows, 1);
  AdaptiveController controller(believed, config, metrics, trace);

  AdaptiveSimResult result;
  result.static_plan = controller.plan();
  result.static_t_gen = true_t_gen(truth, result.static_plan);

  double adaptive_seconds = 0.0;
  int total_steps = 0;
  for (int w = 0; w < windows; ++w) {
    // The window executes under the plan currently in force; the decision
    // it produces only affects the *next* window (block-boundary apply).
    const ParallelismPlan in_force = controller.plan();
    adaptive_seconds += true_t_gen(truth, in_force) * config.window_steps;
    total_steps += config.window_steps;

    const WindowSample sample =
        measure_window(truth, in_force, config.window_steps);
    const ReplanDecision decision = controller.observe(sample);
    if (decision.action == ReplanAction::kApply) ++result.applied;
    if (decision.action == ReplanAction::kRevert) ++result.reverted;
  }
  result.final_plan = controller.plan();
  result.adaptive_t_gen = adaptive_seconds / static_cast<double>(total_steps);
  return result;
}

}  // namespace lmo::parallel
