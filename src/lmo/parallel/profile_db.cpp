#include "lmo/parallel/profile_db.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "lmo/util/check.hpp"
#include "lmo/util/stats.hpp"

namespace lmo::parallel {

void ProfileDB::record(const std::string& op_name, int intra_threads,
                       double seconds) {
  LMO_CHECK_GE(intra_threads, 1);
  LMO_CHECK_GE(seconds, 0.0);
  table_[{op_name, intra_threads}] = seconds;
}

bool ProfileDB::has(const std::string& op_name, int intra_threads) const {
  return table_.count({op_name, intra_threads}) != 0;
}

double ProfileDB::lookup(const std::string& op_name,
                         int intra_threads) const {
  auto it = table_.find({op_name, intra_threads});
  LMO_CHECK_MSG(it != table_.end(),
                "no profile for op '" + op_name + "' at " +
                    std::to_string(intra_threads) + " threads");
  return it->second;
}

double ProfileDB::lookup_nearest(const std::string& op_name,
                                 int intra_threads) const {
  double best = 0.0;
  int best_distance = std::numeric_limits<int>::max();
  bool found = false;
  for (const auto& [key, seconds] : table_) {
    if (key.first != op_name) continue;
    const int distance = std::abs(key.second - intra_threads);
    if (distance < best_distance) {
      best_distance = distance;
      best = seconds;
      found = true;
    }
  }
  LMO_CHECK_MSG(found, "no profile at any thread count for op: " + op_name);
  return best;
}

ProfileDB ProfileDB::from_scaling_model(const model::OpGraph& graph,
                                        const ThreadScalingModel& model,
                                        const std::vector<int>& thread_counts) {
  ProfileDB db;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto& op = graph.node(static_cast<model::OpId>(i));
    for (int threads : thread_counts) {
      // Solo execution: total active threads = this op's threads.
      db.record(op.name, threads, model.op_seconds(op, threads, threads));
    }
  }
  return db;
}

void ProfileDB::measure(const std::string& op_name, int intra_threads,
                        int repeats, const std::function<void()>& body) {
  LMO_CHECK_GE(repeats, 1);
  util::SampleSet samples;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    samples.add(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
  }
  record(op_name, intra_threads, samples.median());
}

}  // namespace lmo::parallel
