#include "lmo/parallel/bundling.hpp"

#include <map>
#include <set>

#include "lmo/util/check.hpp"

namespace lmo::parallel {

int bundle_small_ops(model::OpGraph& graph, const BundlingOptions& options) {
  const auto order = graph.topological_order();
  int next_bundle = 0;
  for (model::OpId id : order) {
    auto& node = graph.node(id);
    const bool small = node.flops < options.small_flops_threshold &&
                       node.bytes < options.small_bytes_threshold;
    const auto& preds = graph.predecessors(id);
    if (small && preds.size() == 1 &&
        graph.successors(preds[0]).size() == 1) {
      // Linear-chain fusion: inherit the predecessor's bundle.
      node.bundle = graph.node(preds[0]).bundle;
    } else {
      node.bundle = next_bundle++;
    }
  }
  return next_bundle;
}

model::OpGraph bundled_graph(const model::OpGraph& graph) {
  // Collect members per bundle (bundle ids are assigned in topological
  // order by bundle_small_ops, so they are already valid node ids for the
  // coarse graph).
  std::map<int, std::vector<model::OpId>> members;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto& node = graph.node(static_cast<model::OpId>(i));
    LMO_CHECK_MSG(node.bundle >= 0,
                  "bundled_graph requires bundle_small_ops to run first");
    members[node.bundle].push_back(static_cast<model::OpId>(i));
  }

  model::OpGraph coarse;
  std::map<int, model::OpId> bundle_to_node;
  for (const auto& [bundle, ops] : members) {
    double flops = 0.0;
    double bytes = 0.0;
    std::string name = "bundle" + std::to_string(bundle) + "{";
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto& op = graph.node(ops[i]);
      flops += op.flops;
      bytes += op.bytes;
      if (i > 0) name += "+";
      name += op.name;
    }
    name += "}";
    bundle_to_node[bundle] = coarse.add_op(std::move(name), flops, bytes);
  }

  std::set<std::pair<model::OpId, model::OpId>> edges;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto from_id = static_cast<model::OpId>(i);
    const int from_bundle = graph.node(from_id).bundle;
    for (model::OpId succ : graph.successors(from_id)) {
      const int to_bundle = graph.node(succ).bundle;
      if (from_bundle == to_bundle) continue;
      const auto edge = std::make_pair(bundle_to_node.at(from_bundle),
                                       bundle_to_node.at(to_bundle));
      if (edges.insert(edge).second) {
        coarse.add_edge(edge.first, edge.second);
      }
    }
  }
  return coarse;
}

}  // namespace lmo::parallel
