// Online adaptive parallelism control — the closed-loop counterpart of
// Algorithm 3 (paper §4.2). The offline search runs once at plan time on
// *believed* inputs (analytic op curves, an assumed per-thread copy
// bandwidth); when those beliefs are wrong the static ParallelismPlan
// leaves throughput on the table for the whole run. The controller closes
// the loop: at block boundaries it folds the measured per-task span
// durations (the six Algorithm-1 task spans, from telemetry::TraceRecorder
// in the runtime or from sim::Engine task records in the DES) back into
// the search inputs — observed per-thread copy bandwidth, observed compute
// scaling as a ProfileDB overlay — re-runs the Algorithm-3 search, and
// switches plans only when the re-calibrated model predicts a win past a
// hysteresis margin. An applied plan is judged against the measured
// baseline it was supposed to beat and reverted on regression.
//
// Determinism: decisions are a pure function of the observed WindowSamples
// and the initial inputs. Metrics land under "parallel.*" and replan
// events are traced with *virtual* timestamps (the window index), so two
// runs fed identical samples produce byte-identical telemetry — the
// property `lmo chaos --profile adaptive` drills.
#pragma once

#include <array>
#include <optional>

#include "lmo/parallel/parallelism_search.hpp"
#include "lmo/parallel/profile_db.hpp"
#include "lmo/telemetry/metrics.hpp"
#include "lmo/telemetry/trace.hpp"

namespace lmo::parallel {

struct AdaptiveConfig {
  bool enabled = false;
  /// Decode steps aggregated into one observation window (≥ 1). The
  /// controller decides at most once per window.
  int window_steps = 8;
  /// Minimum predicted improvement — as a fraction of the current plan's
  /// re-calibrated t_gen — before a candidate plan is applied.
  double hysteresis = 0.05;
  /// Measured per-step regression past the pre-apply baseline that makes
  /// the controller revert an applied plan.
  double revert_margin = 0.10;
  /// Observe-only windows after an apply or revert, letting the new
  /// allocation settle (and the calibration EMA converge) before it is
  /// judged or changed again.
  int hold_windows = 1;
  /// EMA weight of the newest window in the calibration state, in (0, 1].
  double ema_alpha = 0.5;
  /// Thread budget handed to the Algorithm-3 search; 0 = platform cores.
  int max_threads = 0;

  void validate() const;
};

enum class ReplanAction { kHold, kApply, kRevert };
const char* to_string(ReplanAction action);

/// Aggregated task-span measurements for one observation window. Runtime:
/// summed TraceRecorder span durations for "compute" and the five
/// kIoTaskNames plus the OffloadManager's byte-counter delta. DES: summed
/// sim::Engine task durations by category (Engine::set_task_observer).
struct WindowSample {
  int steps = 1;  ///< decode steps the window covers
  double compute_seconds = 0.0;
  std::array<double, kNumIoTasks> io_seconds{};
  std::array<double, kNumIoTasks> io_bytes{};  ///< bytes actually moved
};

struct ReplanDecision {
  ReplanAction action = ReplanAction::kHold;
  ParallelismPlan plan;          ///< the plan in force after this decision
  double measured_t_gen = 0.0;   ///< per-step bottleneck from the sample
  double predicted_t_gen = 0.0;  ///< re-calibrated model score of `plan`
};

class AdaptiveController {
 public:
  /// `believed` seeds the search inputs (and yields the initial plan via
  /// find_optimal_parallelism). Metrics/trace sinks are optional; when set
  /// they receive the parallel.* vocabulary and parallel.replan events.
  AdaptiveController(SearchInput believed, AdaptiveConfig config,
                     telemetry::MetricsRegistry* metrics = nullptr,
                     telemetry::TraceRecorder* trace = nullptr);

  /// The plan currently in force (the believed-input optimum before any
  /// window was observed).
  const ParallelismPlan& plan() const { return current_; }
  const SearchInput& input() const { return input_; }
  const AdaptiveConfig& config() const { return config_; }

  /// Calibration state: the EMA'd observed per-thread copy bandwidth and
  /// the measured/predicted compute ratio materialized into the ProfileDB.
  double calibrated_copy_bw() const { return input_.per_thread_copy_bw; }
  double compute_scale() const { return compute_scale_; }
  int windows_observed() const { return windows_; }

  /// Fold one window of measurements: update the calibration EMAs, re-run
  /// the Algorithm-3 search on the re-calibrated inputs, and decide. At
  /// most one plan change per call; the caller applies `decision.plan`
  /// between blocks (never mid-step) when action != kHold.
  ReplanDecision observe(const WindowSample& sample);

 private:
  void calibrate(const WindowSample& sample);
  /// The measured compute scaling folded into ProfileDB form: analytic op
  /// times at full thread-budget pressure (normalized by the budget's
  /// contention factor, which the profile path multiplies back) ×
  /// compute_scale_, for every op and thread count — the search sees the
  /// observed curve through its normal profile path.
  ProfileDB scaled_profiles() const;
  void publish(const ReplanDecision& decision);
  static bool same_config(const ParallelismPlan& a, const ParallelismPlan& b);

  SearchInput input_;
  AdaptiveConfig config_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::TraceRecorder* trace_;

  ParallelismPlan current_;
  std::optional<ParallelismPlan> previous_;  ///< revert target
  double baseline_measured_ = 0.0;  ///< measured t_gen when current_ applied
  double compute_scale_ = 1.0;      ///< measured / analytic compute time
  bool copy_bw_observed_ = false;
  int hold_ = 0;
  int windows_ = 0;
};

/// One adaptive-vs-static comparison on the DES: the controller starts
/// from the (possibly mis-calibrated) `believed` input while every
/// window's task spans are produced by scheduling the current plan on a
/// sim::Engine whose durations come from `truth` — collected through
/// Engine::set_task_observer, mirroring how the runtime collects
/// TraceRecorder spans. Deterministic: same inputs → byte-identical
/// metrics and replan trace events.
struct AdaptiveSimResult {
  ParallelismPlan static_plan;  ///< Algorithm 3 on the believed input
  ParallelismPlan final_plan;   ///< in force after the last window
  double static_t_gen = 0.0;    ///< per-step time of static_plan under truth
  double adaptive_t_gen = 0.0;  ///< time-averaged per-step time, adaptive
  int applied = 0;
  int reverted = 0;
};

AdaptiveSimResult simulate_adaptive(const SearchInput& believed,
                                    const SearchInput& truth,
                                    const AdaptiveConfig& config, int windows,
                                    telemetry::MetricsRegistry* metrics = nullptr,
                                    telemetry::TraceRecorder* trace = nullptr);

/// Trace "process" id adaptive replan events are emitted under.
inline constexpr int kParallelTracePid = 2;

}  // namespace lmo::parallel
