#include "lmo/parallel/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "lmo/util/check.hpp"

namespace lmo::parallel {

ThreadScalingModel::ThreadScalingModel(const hw::Device& cpu,
                                       ScalingParams params)
    : cpu_(cpu), params_(params) {
  LMO_CHECK(cpu.kind == hw::DeviceKind::kCPU);
  LMO_CHECK_GE(params_.bw_saturation_threads, 1);
}

double ThreadScalingModel::effective_bandwidth(int intra_threads) const {
  LMO_CHECK_GE(intra_threads, 1);
  // Saturating ramp: full bandwidth at bw_saturation_threads, linear below.
  const double fraction =
      std::min(1.0, static_cast<double>(intra_threads) /
                        static_cast<double>(params_.bw_saturation_threads));
  return cpu_.mem_bandwidth * fraction;
}

double ThreadScalingModel::contention_factor(int total_active_threads) const {
  LMO_CHECK_GE(total_active_threads, 0);
  const double cores = static_cast<double>(cpu_.cores);
  const double over =
      std::max(0.0, static_cast<double>(total_active_threads) - cores) /
      cores;
  return 1.0 + params_.oversubscription_penalty * over;
}

double ThreadScalingModel::op_seconds(const model::OpNode& op,
                                      int intra_threads,
                                      int total_active_threads) const {
  LMO_CHECK_GE(intra_threads, 1);
  const int usable = std::min(intra_threads, cpu_.hw_threads);

  // Fair sharing: when the machine-wide active thread count exceeds the
  // physical cores, every op gets a proportional slice of compute and
  // memory bandwidth — oversubscription never creates capacity.
  const double available =
      std::min(1.0, static_cast<double>(cpu_.cores) /
                        static_cast<double>(std::max(total_active_threads,
                                                     1)));

  // Compute-bound component: flat per-core FLOP rate, per-op scaling cap,
  // shared cores.
  const double per_core_flops =
      cpu_.peak_flops / static_cast<double>(cpu_.cores);
  double compute_threads = static_cast<double>(
      std::min({usable, params_.per_op_compute_cap, cpu_.cores}));
  compute_threads = std::min(
      compute_threads,
      std::max(1.0, static_cast<double>(cpu_.cores) * available));
  const double compute = op.flops / (per_core_flops * compute_threads);

  // Memory-bound component: the op's own saturating ramp, bounded by its
  // thread-proportional share of the machine's total bandwidth (so the
  // aggregate across co-running ops never exceeds capacity, and scaling
  // intra-op threads with fixed co-runners is flat — paper Fig. 5 left).
  const double share =
      cpu_.mem_bandwidth *
      std::min(1.0, static_cast<double>(usable) /
                        static_cast<double>(std::max(total_active_threads,
                                                     usable)));
  const double bandwidth = std::min(effective_bandwidth(usable), share);
  const double memory = op.bytes / bandwidth;

  double t = std::max(compute, memory);

  // Cache thrash from oversubscription, and NUMA once one op spans both
  // sockets.
  t *= contention_factor(total_active_threads);
  if (usable > cpu_.cores / 2) t *= params_.numa_penalty;

  return t + params_.dispatch_overhead;
}

}  // namespace lmo::parallel
