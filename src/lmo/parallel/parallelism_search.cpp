#include "lmo/parallel/parallelism_search.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lmo/sim/engine.hpp"
#include "lmo/util/check.hpp"

namespace lmo::parallel {
namespace {

constexpr int kReservedIoThreads = 5;  // Algorithm 3, line 7

/// Per-op duration function combining the scaling model with optional
/// measured profiles.
std::function<double(const model::OpNode&)> make_op_seconds(
    const ThreadScalingModel& scaling, int intra_threads,
    int total_active_threads, const ProfileDB* profiles) {
  return [&scaling, intra_threads, total_active_threads,
          profiles](const model::OpNode& op) {
    if (profiles != nullptr && profiles->has(op.name, intra_threads)) {
      // Measured solo time, corrected for machine-wide contention.
      return profiles->lookup(op.name, intra_threads) *
             scaling.contention_factor(total_active_threads);
    }
    return scaling.op_seconds(op, intra_threads, total_active_threads);
  };
}

double disk_bw(const SearchInput& input) {
  return input.disk_gbps > 0.0 ? input.disk_gbps * 1e9
                               : input.platform.disk_to_cpu.bandwidth;
}

/// Staging threads for the disk-load task: enough that their aggregate
/// copy bandwidth covers the disk link (disk reads land in host buffers
/// through the same per-thread memcpy path as the PCIe stages), capped at
/// 4 so a slow link cannot starve the compute tasks. Zero without a disk
/// tier, so legacy searches are bit-for-bit unchanged.
int disk_threads_needed(const SearchInput& input) {
  if (input.disk_bytes <= 0.0) return 0;
  const double per_thread = std::max(input.per_thread_copy_bw, 1.0);
  const int need = static_cast<int>(std::ceil(disk_bw(input) / per_thread));
  return std::clamp(need, 1, 4);
}

double io_task_seconds(double bytes, int threads, double link_bw,
                       double per_thread_copy_bw) {
  if (bytes <= 0.0) return 0.0;
  LMO_CHECK_GE(threads, 1);
  const double rate =
      std::min(link_bw, per_thread_copy_bw * static_cast<double>(threads));
  return bytes / rate;
}

std::array<int, kNumIoTasks> assign_io_threads(
    const std::array<double, kNumIoTasks>& volumes, int free_threads) {
  LMO_CHECK_GE(free_threads, kReservedIoThreads);
  std::array<int, kNumIoTasks> threads;
  threads.fill(1);  // each load/store task runs one operation (paper §4.2)
  int remaining = free_threads - static_cast<int>(kNumIoTasks);

  double total = 0.0;
  for (double v : volumes) total += v;
  if (total <= 0.0 || remaining <= 0) return threads;

  // Largest-remainder proportional allocation.
  std::array<double, kNumIoTasks> exact{};
  std::array<int, kNumIoTasks> extra{};
  int assigned = 0;
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    exact[i] = static_cast<double>(remaining) * volumes[i] / total;
    extra[i] = static_cast<int>(exact[i]);
    assigned += extra[i];
  }
  std::vector<std::size_t> order(kNumIoTasks);
  for (std::size_t i = 0; i < kNumIoTasks; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return (exact[a] - extra[a]) > (exact[b] - extra[b]);
  });
  for (std::size_t i = 0; i < order.size() && assigned < remaining; ++i) {
    ++extra[order[i]];
    ++assigned;
  }
  for (std::size_t i = 0; i < kNumIoTasks; ++i) threads[i] += extra[i];
  return threads;
}

}  // namespace

int max_concurrency_timed(
    const model::OpGraph& graph,
    const std::function<double(const model::OpNode&)>& op_seconds) {
  if (graph.size() == 0) return 0;
  // Infinite lanes: start = max over predecessor finishes.
  const auto order = graph.topological_order();
  std::vector<double> start(graph.size(), 0.0);
  std::vector<double> finish(graph.size(), 0.0);
  for (model::OpId id : order) {
    double s = 0.0;
    for (model::OpId p : graph.predecessors(id)) {
      s = std::max(s, finish[static_cast<std::size_t>(p)]);
    }
    start[static_cast<std::size_t>(id)] = s;
    finish[static_cast<std::size_t>(id)] =
        s + op_seconds(graph.node(id));
  }
  // Sweep events to find peak overlap.
  std::vector<std::pair<double, int>> events;
  events.reserve(graph.size() * 2);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    events.push_back({start[i], +1});
    events.push_back({finish[i], -1});
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // process ends before starts
            });
  int current = 0;
  int peak = 0;
  for (const auto& [time, delta] : events) {
    current += delta;
    peak = std::max(peak, current);
  }
  return peak;
}

double schedule_compute_graph(
    const model::OpGraph& graph, int inter_op,
    const std::function<double(const model::OpNode&)>& op_seconds) {
  LMO_CHECK_GE(inter_op, 1);
  if (graph.size() == 0) return 0.0;
  sim::Engine engine;
  const auto lanes = engine.add_resource("cpu_ops", inter_op);
  const auto order = graph.topological_order();
  std::vector<sim::TaskId> task_of(graph.size(), sim::kInvalidTask);
  for (model::OpId id : order) {
    std::vector<sim::TaskId> deps;
    for (model::OpId p : graph.predecessors(id)) {
      deps.push_back(task_of[static_cast<std::size_t>(p)]);
    }
    task_of[static_cast<std::size_t>(id)] =
        engine.add_task(graph.node(id).name, "op", lanes,
                        op_seconds(graph.node(id)), deps);
  }
  return engine.run().makespan;
}

std::function<double(const model::OpNode&)> op_seconds_fn(
    const SearchInput& input, int intra_threads, int total_active_threads,
    const ProfileDB* profiles) {
  return [scaling = ThreadScalingModel(input.platform.cpu), intra_threads,
          total_active_threads, profiles](const model::OpNode& op) {
    if (profiles != nullptr && profiles->has(op.name, intra_threads)) {
      return profiles->lookup(op.name, intra_threads) *
             scaling.contention_factor(total_active_threads);
    }
    return scaling.op_seconds(op, intra_threads, total_active_threads);
  };
}

ParallelismPlan evaluate_parallelism(
    const SearchInput& input, int intra_op, int inter_op,
    const std::array<int, kNumIoTasks>& io_threads,
    const ProfileDB* profiles) {
  LMO_CHECK_GE(intra_op, 1);
  LMO_CHECK_GE(inter_op, 1);
  int io_thread_total = 0;
  for (int t : io_threads) {
    LMO_CHECK_GE(t, 1);
    io_thread_total += t;
  }
  const int disk_threads = disk_threads_needed(input);
  const int total_active = inter_op * intra_op + io_thread_total +
                           disk_threads;
  const auto contended =
      op_seconds_fn(input, intra_op, total_active, profiles);

  ParallelismPlan plan;
  plan.intra_op_compute = intra_op;
  plan.inter_op_compute = inter_op;
  plan.inter_op_total = inter_op + static_cast<int>(kNumIoTasks) +
                        (disk_threads > 0 ? 1 : 0);
  plan.io_threads = io_threads;
  plan.disk_threads = disk_threads;
  plan.compute_seconds =
      schedule_compute_graph(input.compute_graph, inter_op, contended);
  double t_gen = plan.compute_seconds;
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    const double link = (i == kStoreActivation || i == kStoreCache)
                            ? input.platform.d2h_bw()
                            : input.platform.h2d_bw();
    plan.io_seconds[i] = io_task_seconds(input.io_bytes[i], io_threads[i],
                                         link, input.per_thread_copy_bw);
    t_gen = std::max(t_gen, plan.io_seconds[i]);
  }
  if (disk_threads > 0) {
    plan.disk_seconds = io_task_seconds(input.disk_bytes, disk_threads,
                                        disk_bw(input),
                                        input.per_thread_copy_bw);
    t_gen = std::max(t_gen, plan.disk_seconds);
  }
  plan.t_gen = t_gen;
  plan.valid = true;
  return plan;
}

ParallelismPlan find_optimal_parallelism(const SearchInput& input,
                                         const ProfileDB* profiles) {
  const int max_threads =
      input.max_threads > 0 ? input.max_threads : input.platform.cpu.cores;
  // With a disk tier the staging threads are reserved on top of Algorithm
  // 3's five I/O threads — the disk-load task runs concurrently with the
  // PCIe stages and must not steal their lanes.
  const int reserved = kReservedIoThreads + disk_threads_needed(input);
  LMO_CHECK_GT(max_threads, reserved);
  const ThreadScalingModel scaling(input.platform.cpu);

  ParallelismPlan best;
  double best_t_gen = 0.0;

  for (int intra = 1; intra <= max_threads - reserved; ++intra) {
    // Line 4: inter-op from the graph's max concurrency level, bounded by
    // the budget that must leave five threads for the I/O tasks.
    const auto solo = make_op_seconds(scaling, intra, intra, profiles);
    int inter = max_concurrency_timed(input.compute_graph, solo);
    inter = std::max(1, std::min(inter, (max_threads - reserved) / intra));
    const int free_threads =
        max_threads - inter * intra - disk_threads_needed(input);
    if (free_threads < kReservedIoThreads) continue;  // Lines 6-7

    const auto io_threads = assign_io_threads(input.io_bytes, free_threads);
    const ParallelismPlan plan =
        evaluate_parallelism(input, intra, inter, io_threads, profiles);

    if (!best.valid || plan.t_gen < best_t_gen) {
      best = plan;
      best_t_gen = plan.t_gen;
    }
  }
  LMO_CHECK_MSG(best.valid, "no feasible parallelism configuration");
  return best;
}

ParallelismPlan default_parallelism(const SearchInput& input) {
  // Framework defaults (paper §4.1): intra-op = physical cores, inter-op =
  // all hardware threads — heavily oversubscribed.
  const ThreadScalingModel scaling(input.platform.cpu);
  const int intra = input.platform.cpu.cores;
  const int inter_limit = input.platform.cpu.hw_threads;

  const auto solo = [&](const model::OpNode& op) {
    return scaling.op_seconds(op, intra, intra);
  };
  int inter = max_concurrency_timed(input.compute_graph, solo);
  inter = std::max(1, std::min(inter, inter_limit));

  const int total_active = inter * intra + static_cast<int>(kNumIoTasks);
  const auto contended = [&](const model::OpNode& op) {
    return scaling.op_seconds(op, intra, total_active);
  };

  ParallelismPlan plan;
  plan.intra_op_compute = intra;
  plan.inter_op_compute = inter;
  plan.inter_op_total = inter + static_cast<int>(kNumIoTasks);
  plan.io_threads.fill(1);
  plan.compute_seconds =
      schedule_compute_graph(input.compute_graph, inter, contended);
  double t_gen = plan.compute_seconds;
  for (std::size_t i = 0; i < kNumIoTasks; ++i) {
    const double link = (i == kStoreActivation || i == kStoreCache)
                            ? input.platform.d2h_bw()
                            : input.platform.h2d_bw();
    plan.io_seconds[i] =
        io_task_seconds(input.io_bytes[i], 1, link, input.per_thread_copy_bw);
    t_gen = std::max(t_gen, plan.io_seconds[i]);
  }
  if (input.disk_bytes > 0.0) {
    // Uncontrolled frameworks give the disk reader a single thread too.
    plan.disk_threads = 1;
    plan.inter_op_total += 1;
    plan.disk_seconds = io_task_seconds(input.disk_bytes, 1, disk_bw(input),
                                        input.per_thread_copy_bw);
    t_gen = std::max(t_gen, plan.disk_seconds);
  }
  plan.t_gen = t_gen;
  plan.valid = true;
  return plan;
}

}  // namespace lmo::parallel
