// Fixed-size thread pool with a shared FIFO queue. This is the real
// execution substrate for the runtime's asynchronous offload tasks and the
// inter-op executor; its size is what LM-Offload's parallelism controller
// decides. Keep it boring and correct: mutex + condvar, no lock-free
// cleverness — task granularity here is ≥ tens of microseconds.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lmo::parallel {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (≥ 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Number of tasks executed since construction.
  std::size_t completed() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  std::size_t completed_ = 0;
  bool stop_ = false;
};

}  // namespace lmo::parallel
