// Resizable thread pool with a shared FIFO queue. This is the real
// execution substrate for the runtime's asynchronous offload tasks and the
// inter-op executor; its size is what LM-Offload's parallelism controller
// decides — statically at plan time, and online via resize() when the
// adaptive controller re-runs Algorithm 3 between decode blocks. Keep it
// boring and correct: mutex + condvar, no lock-free cleverness — task
// granularity here is ≥ tens of microseconds.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace lmo::parallel {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (≥ 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Number of tasks executed since construction.
  std::size_t completed() const;

  /// Change the worker count to `num_threads` (≥ 1). Growing spawns the
  /// extra workers immediately. Shrinking drains first — the call blocks
  /// until every task submitted so far has run — then retires the excess
  /// workers; retiring workers still prefer executing any task a racing
  /// submit() enqueued over exiting, and the surviving workers outnumber
  /// the retirements, so no task is ever stranded. Safe to call
  /// concurrently with submit()/wait_idle(); concurrent resize() calls
  /// serialize against each other.
  void resize(int num_threads);

 private:
  void worker_loop();

  /// Guards workers_ against concurrent resize() and makes size() safe to
  /// read from any thread. Never held while waiting on cv_/idle_cv_.
  mutable std::mutex resize_mutex_;
  std::vector<std::thread> workers_;

  std::queue<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::condition_variable retire_cv_;
  std::size_t in_flight_ = 0;
  std::size_t completed_ = 0;
  std::size_t retire_ = 0;  ///< workers asked to exit by a shrink
  std::vector<std::thread::id> retired_;  ///< exited, awaiting join
  bool stop_ = false;
};

}  // namespace lmo::parallel
