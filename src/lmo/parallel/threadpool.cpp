#include "lmo/parallel/threadpool.hpp"

#include <algorithm>

#include "lmo/util/check.hpp"

namespace lmo::parallel {

ThreadPool::ThreadPool(int num_threads) {
  LMO_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(resize_mutex_);
  return static_cast<int>(workers_.size());
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LMO_CHECK_MSG(!stop_, "submit on stopped ThreadPool");
    queue_.push(std::move(packaged));
    ++in_flight_;
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::resize(int num_threads) {
  LMO_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> resize_lock(resize_mutex_);
  const int current = static_cast<int>(workers_.size());
  if (num_threads == current) return;

  if (num_threads > current) {
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = current; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    return;
  }

  // Shrink: drain every task submitted so far, then mark the excess for
  // retirement. Tasks racing in after the drain are fine — a woken worker
  // only retires when the queue is empty, and `num_threads` workers always
  // survive to serve them.
  const std::size_t excess = static_cast<std::size_t>(current - num_threads);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
    retire_ += excess;
  }
  cv_.notify_all();

  std::vector<std::thread::id> exited;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    retire_cv_.wait(lock, [this, excess] { return retired_.size() >= excess; });
    exited.swap(retired_);
  }
  for (const std::thread::id id : exited) {
    const auto it =
        std::find_if(workers_.begin(), workers_.end(),
                     [id](const std::thread& w) { return w.get_id() == id; });
    LMO_CHECK(it != workers_.end());
    it->join();
    workers_.erase(it);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] {
        return stop_ || retire_ > 0 || !queue_.empty();
      });
      if (stop_ && queue_.empty()) return;
      if (queue_.empty()) {
        if (retire_ > 0) {
          --retire_;
          retired_.push_back(std::this_thread::get_id());
          retire_cv_.notify_all();
          return;
        }
        continue;  // spurious wake
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      ++completed_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lmo::parallel
