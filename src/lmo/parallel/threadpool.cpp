#include "lmo/parallel/threadpool.hpp"

#include "lmo/util/check.hpp"

namespace lmo::parallel {

ThreadPool::ThreadPool(int num_threads) {
  LMO_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LMO_CHECK_MSG(!stop_, "submit on stopped ThreadPool");
    queue_.push(std::move(packaged));
    ++in_flight_;
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      ++completed_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lmo::parallel
