// Thread-scaling model for CPU operators (paper §4.1, Fig. 5).
//
// An operator's runtime as a function of its intra-op thread count and the
// total thread pressure on the machine. Three effects, each observed in the
// paper's characterization:
//   1. Memory-bound ops stop scaling once a few threads saturate memory
//      bandwidth ("performance becomes stable when threads > 8").
//   2. Oversubscribing hardware threads (co-running operators × intra-op
//      threads beyond the core count) thrashes the cache hierarchy and
//      adds scheduling overhead (the paper's 40% variance).
//   3. Crossing the socket boundary pays a NUMA penalty ("cross-socket
//      memory accesses become more often").
//
// The paper handles this with offline profiles; we provide the analytic
// curve (calibrated to Fig. 5's shape) and a ProfileDB that can be filled
// either from this model or from real measurements.
#pragma once

#include "lmo/hw/platform.hpp"
#include "lmo/model/opgraph.hpp"

namespace lmo::parallel {

struct ScalingParams {
  /// Threads at which a memory-bound op reaches full memory bandwidth.
  int bw_saturation_threads = 8;
  /// Threads beyond which one op's *compute* stops scaling (sync and cache
  /// limits inside a single kernel — paper §4.1: "performance ... becomes
  /// stable when the number of threads is larger than 8").
  int per_op_compute_cap = 8;
  /// Cache-thrash penalty slope per unit of oversubscription beyond the
  /// physical cores (on top of fair core sharing).
  double oversubscription_penalty = 0.05;
  /// Multiplier once a single op's threads span both sockets.
  double numa_penalty = 1.10;
  /// Fixed per-op scheduling overhead (thread wake/join), seconds.
  double dispatch_overhead = 8e-6;
};

class ThreadScalingModel {
 public:
  ThreadScalingModel(const hw::Device& cpu, ScalingParams params = {});

  /// Runtime of one operator with `intra_threads` threads while
  /// `total_active_threads` are live machine-wide (its own included).
  double op_seconds(const model::OpNode& op, int intra_threads,
                    int total_active_threads) const;

  /// Effective memory bandwidth a single op achieves with `intra_threads`.
  double effective_bandwidth(int intra_threads) const;

  /// Cache-thrash multiplier (≥ 1) for the machine-wide thread pressure.
  double contention_factor(int total_active_threads) const;

  const ScalingParams& params() const { return params_; }
  const hw::Device& cpu() const { return cpu_; }

 private:
  hw::Device cpu_;
  ScalingParams params_;
};

}  // namespace lmo::parallel
