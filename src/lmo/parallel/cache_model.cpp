#include "lmo/parallel/cache_model.hpp"

namespace lmo::parallel {

CacheMissEstimate estimate_llc_misses(const model::ModelSpec& spec,
                                      const model::Workload& w, int kv_bits,
                                      bool parallelism_control,
                                      const CacheMissParams& params) {
  CacheMissEstimate est;
  const double layers = static_cast<double>(spec.num_layers);

  for (std::int64_t t = 1; t < w.gen_len; ++t) {
    // Reads: the attention scan touches the whole per-layer KV cache once.
    const double kv_read =
        model::kv_cache_bytes_at(spec, w, t, kv_bits) * layers;
    // Writes: the concatenation-style KV append rewrites the cache, plus
    // the new token's K/V and the attention output activations.
    const double kv_rewrite = kv_read;
    const double new_kv = model::new_kv_cache_bytes(spec, w, kv_bits) * layers;
    const double act = model::activation_bytes(spec, w, 16) * layers;
    est.bytes_read += kv_read + new_kv;
    est.bytes_written += kv_rewrite + new_kv + act;
  }

  const double load_thrash = parallelism_control
                                 ? params.load_thrash_controlled
                                 : params.load_thrash_default;
  const double store_thrash = parallelism_control
                                  ? params.store_thrash_controlled
                                  : params.store_thrash_default;
  est.load_misses = est.bytes_read / params.line_bytes * load_thrash;
  // The rewrite traffic was already counted in bytes_written; store thrash
  // folds in write-allocate fills.
  est.store_misses = est.bytes_written / params.line_bytes * store_thrash;
  return est;
}

}  // namespace lmo::parallel
