// Inter-op executor: runs an OpGraph over a ThreadPool respecting
// dependencies, with at most `inter_op_parallelism` operators in flight —
// the same two-level parallelism PyTorch exposes via
// set_num_interop_threads / set_num_threads, which the paper's Algorithm 3
// tunes. Each operator body receives the op id; intra-op parallelism is the
// body's own business (the runtime passes a sub-pool).
#pragma once

#include <functional>

#include "lmo/model/opgraph.hpp"
#include "lmo/parallel/threadpool.hpp"

namespace lmo::parallel {

struct InterOpStats {
  std::size_t ops_executed = 0;
  /// Peak number of operators that were genuinely in flight at once.
  std::size_t peak_concurrency = 0;
};

/// Execute every op in `graph` on `pool`, honouring edges, with at most
/// `inter_op_parallelism` ops admitted concurrently. Blocks until done.
/// `body` is invoked once per op (from a pool thread). Deterministic
/// completion, nondeterministic interleaving — callers synchronize their
/// own state. Rethrows the first body exception after quiescing.
InterOpStats run_graph(const model::OpGraph& graph, ThreadPool& pool,
                       int inter_op_parallelism,
                       const std::function<void(model::OpId)>& body);

}  // namespace lmo::parallel
