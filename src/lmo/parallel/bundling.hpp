// Operator bundling (paper §1/§4: "we bundle small operators when
// throttling parallelism to avoid cache thrashing"). Small operators —
// whose work is below a threshold — are merged with an adjacent operator in
// the same dependency chain so they execute inside one parallelism domain
// instead of paying their own dispatch and cache-warmup cost.
#pragma once

#include <vector>

#include "lmo/model/opgraph.hpp"

namespace lmo::parallel {

struct BundlingOptions {
  /// Ops with fewer FLOPs than this are bundle candidates.
  double small_flops_threshold = 1e6;
  /// ... unless they also move at least this many bytes.
  double small_bytes_threshold = 1e6;
};

/// Assign bundle ids in `graph` (OpNode::bundle): each small op is fused
/// into its sole predecessor's bundle when that is its only dependency and
/// it is the predecessor's only dependent (a linear chain); everything else
/// gets its own bundle. Returns the number of bundles.
int bundle_small_ops(model::OpGraph& graph, const BundlingOptions& options = {});

/// A bundled view: the coarse DAG whose nodes are bundles (summed costs),
/// suitable for concurrency analysis after bundling.
model::OpGraph bundled_graph(const model::OpGraph& graph);

}  // namespace lmo::parallel
