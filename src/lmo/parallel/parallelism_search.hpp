// Thread-level parallelism management — paper §4.2, Algorithm 3.
//
// Decides, for the six decode tasks:
//   * intra-op parallelism for the compute task's operators (one shared
//     value — the paper keeps it uniform to avoid cache misses from
//     re-sizing thread teams);
//   * inter-op parallelism for the compute task = the op graph's maximum
//     concurrency level (Kahn), bounded by the thread budget;
//   * thread counts for the five load/store tasks, proportional to their
//     data-transfer volumes, from the threads left over;
// and keeps the configuration with the best estimated throughput. At least
// five threads must remain for the load/store tasks (Algorithm 3, line 7).
#pragma once

#include <array>
#include <functional>

#include "lmo/hw/platform.hpp"
#include "lmo/model/opgraph.hpp"
#include "lmo/parallel/profile_db.hpp"
#include "lmo/parallel/scaling.hpp"

namespace lmo::parallel {

/// Indices into the five load/store tasks, matching Algorithm 1's order.
enum IoTask : std::size_t {
  kLoadWeight = 0,
  kStoreActivation = 1,
  kStoreCache = 2,
  kLoadCache = 3,
  kLoadActivation = 4,
};
inline constexpr std::size_t kNumIoTasks = 5;

/// Span / category names of the five I/O tasks, in IoTask order — the one
/// vocabulary shared by Algorithm 1's runtime trace spans, the DES task
/// categories, and the adaptive controller's window samples.
inline constexpr std::array<const char*, kNumIoTasks> kIoTaskNames = {
    "load_weight", "store_activation", "store_cache", "load_cache",
    "load_activation"};

struct SearchInput {
  model::OpGraph compute_graph;            ///< attention task (Fig. 6)
  std::array<double, kNumIoTasks> io_bytes{};  ///< per-step transfer volumes
  hw::Platform platform;
  /// Thread budget (paper uses the physical cores). 0 → platform.cpu.cores.
  int max_threads = 0;
  /// Copy bandwidth one thread sustains when staging an I/O task.
  double per_thread_copy_bw = 6e9;
  /// Disk-tier staging (three-tier offload): per-step disk→CPU volume for
  /// disk-resident weight shards. 0 = no disk tier — the search then
  /// reserves no disk threads and reproduces legacy plans exactly.
  double disk_bytes = 0.0;
  /// Measured disk bandwidth (GB/s); 0 → platform.disk_to_cpu.bandwidth.
  double disk_gbps = 0.0;
};

struct ParallelismPlan {
  int intra_op_compute = 1;
  int inter_op_compute = 1;
  /// Total inter-op parallelism = compute + the five load/store tasks.
  int inter_op_total = 6;
  std::array<int, kNumIoTasks> io_threads{};
  double compute_seconds = 0.0;  ///< scheduled compute-task makespan
  std::array<double, kNumIoTasks> io_seconds{};
  /// Disk-load staging task (three-tier offload): threads sized so their
  /// aggregate copy bandwidth covers the disk link (≤ 4), and the
  /// resulting disk→CPU read time. Both zero without disk bytes.
  int disk_threads = 0;
  double disk_seconds = 0.0;
  double t_gen = 0.0;            ///< max over tasks (Eq. 2)
  bool valid = false;
};

/// Peak number of simultaneously running ops when the graph executes with
/// unlimited lanes and per-op durations from `op_seconds` — the "maximum
/// concurrency level" of Algorithm 3 line 4, time-weighted.
int max_concurrency_timed(
    const model::OpGraph& graph,
    const std::function<double(const model::OpNode&)>& op_seconds);

/// Makespan of the compute graph on `inter_op` lanes with per-op durations
/// from `op_seconds` (deterministic list scheduling).
double schedule_compute_graph(
    const model::OpGraph& graph, int inter_op,
    const std::function<double(const model::OpNode&)>& op_seconds);

/// Per-op duration function the search and the adaptive controller share:
/// a measured profile entry (corrected by the machine-wide contention
/// factor) when the ProfileDB has one, else the analytic
/// ThreadScalingModel curve. The returned function owns its model copy.
std::function<double(const model::OpNode&)> op_seconds_fn(
    const SearchInput& input, int intra_threads, int total_active_threads,
    const ProfileDB* profiles = nullptr);

/// Score one *fixed* thread allocation under `input` (Eq. 2 applied to the
/// given configuration instead of searching for one). The adaptive
/// controller re-costs the currently applied plan against re-calibrated
/// inputs with this, and the benches use it as ground truth for a plan
/// executed on a platform whose true parameters differ from the believed
/// ones.
ParallelismPlan evaluate_parallelism(
    const SearchInput& input, int intra_op, int inter_op,
    const std::array<int, kNumIoTasks>& io_threads,
    const ProfileDB* profiles = nullptr);

/// Algorithm 3. Uses the analytic ThreadScalingModel for op times; pass a
/// ProfileDB to override specific (op, threads) entries with measured data.
ParallelismPlan find_optimal_parallelism(const SearchInput& input,
                                         const ProfileDB* profiles = nullptr);

/// The default (uncontrolled) configuration the paper compares against:
/// intra-op = all physical cores, inter-op = all hardware threads.
ParallelismPlan default_parallelism(const SearchInput& input);

}  // namespace lmo::parallel
