#include "lmo/runtime/transformer.hpp"

#include <cmath>
#include <cstring>

#include "lmo/telemetry/trace.hpp"
#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {

using tensor::Tensor;

namespace {

// Spans carry the six Algorithm-1 task names so a runtime trace lines up
// with the simulator's predicted timeline (see docs/observability.md for
// the exact operation ↔ task mapping).
constexpr const char* kSpanCategory = "decode";

telemetry::ScopedSpan task_span(const char* name) {
  return telemetry::ScopedSpan(telemetry::TraceRecorder::global(), name,
                               kSpanCategory);
}

}  // namespace

std::string Transformer::weight_name(std::int64_t layer,
                                     const std::string& kind) {
  return "layer" + std::to_string(layer) + "." + kind;
}

Transformer::Transformer(const model::ModelSpec& spec,
                         OffloadManager& manager, std::int64_t device_layers,
                         std::uint64_t seed, std::int64_t disk_layers)
    : spec_(spec), manager_(manager) {
  spec.validate();
  LMO_CHECK_GE(device_layers, 0);
  LMO_CHECK_GE(disk_layers, 0);
  LMO_CHECK_LE(device_layers + disk_layers, spec.num_layers);

  util::Xoshiro256 rng(seed);
  const std::int64_t h = spec.hidden;
  const std::int64_t h2 = spec.mlp_hidden;
  const float stddev = 0.4f / std::sqrt(static_cast<float>(h));

  // The embedding table is always device-resident (it is touched every
  // token); registering it charges the device pool.
  manager_.register_tensor("embedding", Tensor::normal({spec.vocab, h}, rng,
                                                       1.0f),
                           Tier::kDevice);
  embedding_ = manager_.fetch("embedding");
  lnf_gamma_ = Tensor::full({h}, 1.0f);
  lnf_beta_ = Tensor::zeros({h});

  for (std::int64_t layer = 0; layer < spec.num_layers; ++layer) {
    // Hottest layers on the device, coldest at the back of the model on
    // disk — mirroring the policy search's weights_on_gpu/_on_disk split.
    const Tier tier = layer < device_layers ? Tier::kDevice
                      : layer >= spec.num_layers - disk_layers
                          ? Tier::kDisk
                          : Tier::kHost;
    auto reg = [&](const std::string& kind, Tensor value) {
      manager_.register_tensor(weight_name(layer, kind), std::move(value),
                               tier);
    };
    reg("wq", Tensor::normal({h, h}, rng, stddev));
    reg("wk", Tensor::normal({h, h}, rng, stddev));
    reg("wv", Tensor::normal({h, h}, rng, stddev));
    reg("wo", Tensor::normal({h, h}, rng, stddev));
    reg("w1", Tensor::normal({h2, h}, rng, stddev));
    reg("w2", Tensor::normal({h, h2}, rng, stddev));
    reg("ln1_gamma", Tensor::full({h}, 1.0f));
    reg("ln1_beta", Tensor::zeros({h}));
    reg("ln2_gamma", Tensor::full({h}, 1.0f));
    reg("ln2_beta", Tensor::zeros({h}));
  }
}

SequenceCache Transformer::make_cache(int kv_bits, std::int64_t group_size,
                                      MemoryPool& pool) const {
  KvCacheSpec kv;
  kv.hidden = spec_.hidden;
  kv.num_layers = spec_.num_layers;
  kv.kv_bits = kv_bits;
  kv.quant_group = group_size;
  kv.pool = &pool;
  return MakeKvCache(KVFlavor::kDense, kv);
}

Tensor Transformer::embed(std::span<const std::int64_t> tokens) {
  LMO_CHECK(!tokens.empty());
  const auto span = task_span("load_activation");
  const std::int64_t h = spec_.hidden;
  Tensor out = Tensor::zeros({static_cast<std::int64_t>(tokens.size()), h});
  auto dst = out.f32();
  auto src = embedding_.f32();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::int64_t token = tokens[i];
    LMO_CHECK_GE(token, 0);
    LMO_CHECK_LT(token, spec_.vocab);
    std::memcpy(dst.data() + static_cast<std::int64_t>(i) * h,
                src.data() + token * h,
                static_cast<std::size_t>(h) * sizeof(float));
  }
  return out;
}

Transformer::LayerWeights Transformer::fetch_layer(std::int64_t layer) {
  LayerWeights w;
  w.wq = manager_.fetch(weight_name(layer, "wq"));
  w.wk = manager_.fetch(weight_name(layer, "wk"));
  w.wv = manager_.fetch(weight_name(layer, "wv"));
  w.wo = manager_.fetch(weight_name(layer, "wo"));
  w.w1 = manager_.fetch(weight_name(layer, "w1"));
  w.w2 = manager_.fetch(weight_name(layer, "w2"));
  w.ln1_gamma = manager_.fetch(weight_name(layer, "ln1_gamma"));
  w.ln1_beta = manager_.fetch(weight_name(layer, "ln1_beta"));
  w.ln2_gamma = manager_.fetch(weight_name(layer, "ln2_gamma"));
  w.ln2_beta = manager_.fetch(weight_name(layer, "ln2_beta"));
  return w;
}

Tensor Transformer::attention(const LayerWeights& w, const Tensor& x,
                              KVCacheBase& cache) {
  const std::int64_t t_new = x.shape()[0];
  const std::int64_t h = spec_.hidden;
  const std::int64_t heads = spec_.num_heads;
  const std::int64_t hd = spec_.head_dim();

  Tensor q, k, v;
  {
    const auto span = task_span("compute");
    q = tensor::matmul_nt_blocked(x, w.wq);
    k = tensor::matmul_nt_blocked(x, w.wk);
    v = tensor::matmul_nt_blocked(x, w.wv);
  }

  // Append the new positions to the cache (quantized at rest if enabled).
  {
    const auto span = task_span("store_cache");
    for (std::int64_t i = 0; i < t_new; ++i) {
      cache.append(tensor::slice_rows(k, i, i + 1).reshaped({h}),
                   tensor::slice_rows(v, i, i + 1).reshaped({h}));
    }
  }

  Tensor keys, values;
  std::int64_t total = 0;
  {
    const auto span = task_span("load_cache");
    keys = cache.keys();  // [prior + t_new, h]
    values = cache.values();
    total = cache.length();
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  Tensor out = Tensor::zeros({t_new, h});
  auto pout = out.f32();
  auto pq = q.f32();
  auto pk = keys.f32();
  auto pv = values.f32();

  // Per head: scores = q_h · K_hᵀ · scale with causal masking, softmax,
  // context = scores · V_h. Heads are independent, so they split cleanly
  // across the intra-op pool (bit-identical to the serial order).
  const auto head_range = [&](std::int64_t begin, std::int64_t end) {
    std::vector<float> scores(static_cast<std::size_t>(total));
    for (std::int64_t head = begin; head < end; ++head) {
      const std::int64_t off = head * hd;
      for (std::int64_t i = 0; i < t_new; ++i) {
        // Causal horizon in the *materialized* matrix: everything up to
        // and including token i's own row (the last t_new rows are the new
        // tokens). Equivalent to prior+i+1 for exact caches, and correct
        // under eviction (WindowKVCache), where total < prior + t_new.
        const std::int64_t visible = total - (t_new - 1 - i);
        if (visible <= 0) continue;  // fully evicted context (tiny window)
        const float* qrow = pq.data() + i * h + off;
        float mx = -1e30f;
        for (std::int64_t j = 0; j < visible; ++j) {
          const float* krow = pk.data() + j * h + off;
          float dot = 0.0f;
          for (std::int64_t d = 0; d < hd; ++d) dot += qrow[d] * krow[d];
          scores[static_cast<std::size_t>(j)] = dot * scale;
          mx = std::max(mx, dot * scale);
        }
        float sum = 0.0f;
        for (std::int64_t j = 0; j < visible; ++j) {
          auto& s = scores[static_cast<std::size_t>(j)];
          s = std::exp(s - mx);
          sum += s;
        }
        const float inv = 1.0f / sum;
        float* orow = pout.data() + i * h + off;
        for (std::int64_t j = 0; j < visible; ++j) {
          const float weight = scores[static_cast<std::size_t>(j)] * inv;
          const float* vrow = pv.data() + j * h + off;
          for (std::int64_t d = 0; d < hd; ++d) orow[d] += weight * vrow[d];
        }
      }
    }
  };

  const auto attn_span = task_span("compute");
  if (compute_pool_ == nullptr || compute_pool_->size() <= 1 || heads == 1) {
    head_range(0, heads);
  } else {
    const std::int64_t workers =
        std::min<std::int64_t>(compute_pool_->size(), heads);
    const std::int64_t chunk = (heads + workers - 1) / workers;
    std::vector<std::future<void>> pending;
    for (std::int64_t begin = 0; begin < heads; begin += chunk) {
      const std::int64_t end = std::min(begin + chunk, heads);
      pending.push_back(
          compute_pool_->submit([&, begin, end] { head_range(begin, end); }));
    }
    for (auto& f : pending) f.get();
  }
  return tensor::matmul_nt_blocked(out, w.wo);
}

Tensor Transformer::layer_forward(const LayerWeights& w, const Tensor& x,
                                  KVCacheBase& cache) {
  // Pre-LN attention block.
  const Tensor normed1 = tensor::layer_norm(x, w.ln1_gamma, w.ln1_beta);
  const Tensor attn = attention(w, normed1, cache);
  const Tensor mid = tensor::add(x, attn);

  // Pre-LN MLP block with the model family's non-linearity.
  const auto mlp_span = task_span("compute");
  const Tensor normed2 = tensor::layer_norm(mid, w.ln2_gamma, w.ln2_beta);
  const Tensor pre = tensor::matmul_nt_blocked(normed2, w.w1);
  Tensor up;
  switch (spec_.activation) {
    case model::Activation::kGelu:
      up = tensor::gelu(pre);
      break;
    case model::Activation::kRelu:
      up = tensor::relu(pre);
      break;
    case model::Activation::kSilu:
      up = tensor::silu(pre);
      break;
  }
  const Tensor down = tensor::matmul_nt_blocked(up, w.w2);
  return tensor::add(mid, down);
}

void Transformer::forward(std::vector<Tensor>& states,
                          std::vector<SequenceCache*>& caches,
                          parallel::ThreadPool* prefetch) {
  LMO_CHECK_EQ(states.size(), caches.size());
  LMO_CHECK(!states.empty());

  for (std::int64_t layer = 0; layer < spec_.num_layers; ++layer) {
    if (prefetch != nullptr && layer + 1 < spec_.num_layers) {
      // Warm the next layer's host payloads concurrently with compute.
      for (const char* kind : {"wq", "wk", "wv", "wo", "w1", "w2"}) {
        (void)manager_.prefetch(weight_name(layer + 1, kind), *prefetch);
      }
    }
    const LayerWeights w = fetch_layer(layer);
    for (std::size_t s = 0; s < states.size(); ++s) {
      states[s] = layer_forward(
          w, states[s], *(*caches[s])[static_cast<std::size_t>(layer)]);
    }
  }
}

Tensor Transformer::logits(const Tensor& state) {
  const std::int64_t rows = state.shape()[0];
  const Tensor last = tensor::slice_rows(state, rows - 1, rows);
  const Tensor normed = tensor::layer_norm(last, lnf_gamma_, lnf_beta_);
  return tensor::matmul_nt_blocked(normed, embedding_).reshaped({spec_.vocab});
}

}  // namespace lmo::runtime
