// End-to-end generation harness over the real runtime: prefill + greedy
// decode for a batch of prompts, with the offloading, quantization and
// prefetch machinery engaged. Produces the same accounting the paper
// reports at laptop scale: throughput, phase times, transfer volumes,
// memory peaks and (de)quantization time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lmo/model/llm_config.hpp"
#include "lmo/runtime/paged_kv.hpp"
#include "lmo/runtime/transformer.hpp"

namespace lmo::runtime {

/// Decoding strategy. Greedy (temperature == 0) is deterministic; with
/// temperature > 0 tokens are drawn from the (optionally top-k truncated)
/// softmax distribution using the seeded RNG — still fully reproducible.
struct SamplingConfig {
  double temperature = 0.0;  ///< 0 = greedy argmax
  int top_k = 0;             ///< 0 = no truncation
  double top_p = 0.0;        ///< nucleus cutoff in (0, 1]; 0 = disabled
  std::uint64_t seed = 1234;

  bool greedy() const { return temperature <= 0.0; }
  void validate() const;
};

struct RuntimeConfig {
  model::ModelSpec spec = model::ModelSpec::tiny();
  /// Transformer layers whose weights stay device-resident; the rest are
  /// host-resident and streamed per fetch (the runtime's "wg").
  std::int64_t device_layers = 0;
  int weight_bits = 16;  ///< host weight storage: 16 (fp16), 8 or 4
  int kv_bits = 16;      ///< KV-at-rest storage
  std::int64_t quant_group = 32;
  std::size_t device_capacity = 256u << 20;  ///< logical "GPU" pool
  std::size_t host_capacity = 2048ull << 20;
  /// vLLM-style paged KV allocation (f32 pages from a shared pool)
  /// instead of per-sequence contiguous buffers; requires kv_bits == 16.
  bool paged_kv = false;
  std::int64_t page_tokens = 16;  ///< token slots per page
  int prefetch_threads = 2;  ///< 0 disables async weight prefetch
  /// Transfer-retry / watchdog / degradation knobs (see OffloadManager).
  RecoveryConfig recovery;
  /// Intra-op threads for the attention kernel (heads split across a
  /// pool); 0 = serial. Results are bit-identical either way.
  int compute_threads = 0;
  std::uint64_t seed = 42;
  SamplingConfig sampling;   ///< greedy by default
};

/// Draw one token from `logits` (rank-1, [vocab]) under `config`. Exposed
/// for testing; the Generator calls this per sequence per step.
std::int64_t sample_token(const tensor::Tensor& logits,
                          const SamplingConfig& config,
                          util::Xoshiro256& rng);

struct GenerationResult {
  /// Generated token ids per prompt (greedy argmax decoding).
  std::vector<std::vector<std::int64_t>> tokens;
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  double tokens_per_second = 0.0;  ///< generated tokens / (prefill + decode)
  OffloadStats offload;
  double kv_quantize_seconds = 0.0;
  double kv_dequantize_seconds = 0.0;
  std::size_t device_peak_bytes = 0;
  std::size_t host_peak_bytes = 0;
  std::size_t kv_stored_bytes = 0;
};

class Generator {
 public:
  explicit Generator(const RuntimeConfig& config);
  ~Generator();

  const RuntimeConfig& config() const { return config_; }
  Transformer& transformer() { return *transformer_; }
  OffloadManager& manager() { return *manager_; }
  MemoryPool& device_pool() { return *device_pool_; }
  MemoryPool& host_pool() { return *host_pool_; }

  /// Generate `gen_len` tokens for each prompt.
  GenerationResult generate(
      const std::vector<std::vector<std::int64_t>>& prompts,
      std::int64_t gen_len);

 private:
  RuntimeConfig config_;
  util::Xoshiro256 sampling_rng_;
  std::unique_ptr<MemoryPool> device_pool_;
  std::unique_ptr<MemoryPool> host_pool_;
  std::unique_ptr<OffloadManager> manager_;
  std::unique_ptr<Transformer> transformer_;
  std::unique_ptr<parallel::ThreadPool> prefetch_pool_;
  std::unique_ptr<parallel::ThreadPool> compute_pool_;
  std::unique_ptr<PagePool> page_pool_;  ///< when paged_kv
};

}  // namespace lmo::runtime
