// End-to-end generation harness over the real runtime: prefill + greedy
// decode for a batch of prompts, with the offloading, quantization and
// prefetch machinery engaged. Produces the same accounting the paper
// reports at laptop scale: throughput, phase times, transfer volumes,
// memory peaks and (de)quantization time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lmo/integrity/integrity.hpp"
#include "lmo/model/llm_config.hpp"
#include "lmo/parallel/adaptive_controller.hpp"
#include "lmo/runtime/kv_factory.hpp"
#include "lmo/runtime/paged_kv.hpp"
#include "lmo/runtime/transformer.hpp"
#include "lmo/store/block_store.hpp"

namespace lmo::kvshare {
class PrefixCache;
class PrefixLease;
}  // namespace lmo::kvshare

namespace lmo::perfmodel {
struct Policy;
}  // namespace lmo::perfmodel

namespace lmo::runtime {

/// Decoding strategy. Greedy (temperature == 0) is deterministic; with
/// temperature > 0 tokens are drawn from the (optionally top-k truncated)
/// softmax distribution using the seeded RNG — still fully reproducible.
struct SamplingConfig {
  double temperature = 0.0;  ///< 0 = greedy argmax
  int top_k = 0;             ///< 0 = no truncation
  double top_p = 0.0;        ///< nucleus cutoff in (0, 1]; 0 = disabled
  std::uint64_t seed = 1234;

  bool greedy() const { return temperature <= 0.0; }
  void validate() const;
};

struct RuntimeConfig {
  model::ModelSpec spec = model::ModelSpec::tiny();
  /// Transformer layers whose weights stay device-resident; the rest are
  /// host-resident and streamed per fetch (the runtime's "wg").
  std::int64_t device_layers = 0;
  int weight_bits = 16;  ///< host weight storage: 16 (fp16), 8 or 4
  int kv_bits = 16;      ///< KV-at-rest storage
  std::int64_t quant_group = 32;
  std::size_t device_capacity = 256u << 20;  ///< logical "GPU" pool
  std::size_t host_capacity = 2048ull << 20;
  /// Disk spill tier (three-tier offload). `disk_layers` is the runtime's
  /// "wd": that many of the model's coldest (back) layers register on
  /// Tier::kDisk and stream through the block store per fetch.
  /// `disk_capacity` caps the spill store; 0 disables the tier entirely
  /// (no store is attached — host exhaustion degrades or throws exactly
  /// as before). When enabled the store also absorbs degradation-ladder
  /// spills and host-pressure demotions.
  std::int64_t disk_layers = 0;
  std::size_t disk_capacity = 0;
  /// Backing file for the spill store (created/truncated on
  /// construction); empty = in-memory backend (tests, drills).
  std::string spill_path;
  std::size_t spill_block_bytes = 256u << 10;  ///< store block size
  /// KV backend. kPaged and kWindow store f32 rows and require
  /// kv_bits == 16.
  KVFlavor kv_flavor = KVFlavor::kDense;
  /// Legacy spelling of kv_flavor == kPaged; when set it wins over
  /// kv_flavor (the Generator constructor canonicalizes both fields).
  bool paged_kv = false;
  std::int64_t page_tokens = 16;    ///< token slots per page (kPaged)
  std::int64_t window_tokens = 32;  ///< ring capacity in tokens (kWindow)
  /// Cross-request KV prefix sharing (kvshare subsystem): sessions match
  /// their prompts against a radix tree of cached KV blocks and prefill
  /// only the unmatched suffix. Requires kv_flavor == kDense and
  /// kv_bits == 16 (cached rows are f32, so reuse is bit-exact).
  bool prefix_share = false;
  std::int64_t kv_block_tokens = 16;  ///< tokens per shared KV block
  int prefetch_threads = 2;  ///< 0 disables async weight prefetch
  /// Transfer-retry / watchdog / degradation knobs (see OffloadManager).
  RecoveryConfig recovery;
  /// Intra-op threads for the attention kernel (heads split across a
  /// pool); 0 = serial. Results are bit-identical either way.
  int compute_threads = 0;
  std::uint64_t seed = 42;
  SamplingConfig sampling;   ///< greedy by default
  /// Online adaptive parallelism control: at window boundaries the
  /// Generator folds the measured decode-task spans into the Algorithm-3
  /// search and resizes its thread pools to the winning plan. Token
  /// outputs are unaffected (attention is bit-identical at any pool
  /// size); only thread allocation changes. Not part of the checkpoint
  /// fingerprint — resuming with a different controller setting is legal.
  parallel::AdaptiveConfig adaptive;
  /// Offload-path integrity checking: fingerprint host weight shards,
  /// quantized KV rows and shared prefix blocks at write time and re-check
  /// them per policy on load. A detected mismatch triggers the typed repair
  /// ladder (refetch / recompute / quarantine) before surfacing a
  /// DataCorruption. Like `adaptive`, not part of the checkpoint
  /// fingerprint — resuming under a different verify policy is legal.
  integrity::IntegrityConfig integrity;

  /// Map a policy-search placement onto the runtime knobs:
  /// weights_on_gpu → device_layers (rounded down, so the fixed device
  /// pool never overcommits), weights_on_disk → disk_layers (rounded up,
  /// relieving the host at the cost of disk traffic), weight_bits
  /// verbatim. The caller still chooses disk_capacity / spill_path.
  void apply_policy(const perfmodel::Policy& policy);

  /// Field-named validation (util::Validator); the constructor calls it.
  void validate() const;
};

/// Draw one token from `logits` (rank-1, [vocab]) under `config`. Exposed
/// for testing; the Generator calls this per sequence per step.
std::int64_t sample_token(const tensor::Tensor& logits,
                          const SamplingConfig& config,
                          util::Xoshiro256& rng);

struct GenerationResult {
  /// Generated token ids per prompt (greedy argmax decoding).
  std::vector<std::vector<std::int64_t>> tokens;
  double prefill_seconds = 0.0;
  double decode_seconds = 0.0;
  double tokens_per_second = 0.0;  ///< generated tokens / (prefill + decode)
  OffloadStats offload;
  double kv_quantize_seconds = 0.0;
  double kv_dequantize_seconds = 0.0;
  std::size_t device_peak_bytes = 0;
  std::size_t host_peak_bytes = 0;
  std::size_t kv_stored_bytes = 0;
};

class Generator {
 public:
  /// Builds the disk spill store when config.disk_capacity > 0. The
  /// recovery supervisor injects a factory that attaches a write-ahead
  /// journal (and possibly a recovered free list) before the store sees
  /// its first put; the default factory builds a plain, unjournaled store.
  using SpillStoreFactory = std::function<std::unique_ptr<store::BlockStore>(
      const store::StoreConfig&, telemetry::MetricsRegistry&)>;

  explicit Generator(const RuntimeConfig& config);
  Generator(const RuntimeConfig& config, SpillStoreFactory spill_factory);
  ~Generator();

  /// Restore the last durable state from a recovery directory produced by
  /// recover::RecoveryManager: replay the spill-store journal, adopt the
  /// surviving blocks, and resume the auto-checkpointed session. Defined
  /// in the lmo_recover library (link it to use this entry point); throws
  /// CheckError when the directory holds no resumable checkpoint.
  static std::unique_ptr<Generator> recover(const std::string& dir);

  const RuntimeConfig& config() const { return config_; }
  Transformer& transformer() { return *transformer_; }
  OffloadManager& manager() { return *manager_; }
  MemoryPool& device_pool() { return *device_pool_; }
  MemoryPool& host_pool() { return *host_pool_; }
  /// Disk spill store; nullptr when config.disk_capacity == 0.
  store::BlockStore* spill_store() { return spill_store_.get(); }
  /// Live while an adaptive session is active; nullptr otherwise.
  const parallel::AdaptiveController* adaptive_controller() const {
    return adaptive_.get();
  }

  /// Generate `gen_len` tokens for each prompt. Equivalent to
  /// begin() + step() until done() + finish().
  GenerationResult generate(
      const std::vector<std::vector<std::int64_t>>& prompts,
      std::int64_t gen_len);

  // -- incremental session API --------------------------------------------
  // A session is the unit of checkpointing: begin() runs prefill and
  // samples the first token of every sequence, each step() decodes exactly
  // one more token per sequence, and between steps the session can be
  // snapshot to disk and later resumed — on this Generator or on a freshly
  // constructed one with an identical RuntimeConfig.

  /// Start a session: prefill `prompts` and sample the first token each.
  /// Throws CheckError if a session is already active.
  void begin(const std::vector<std::vector<std::int64_t>>& prompts,
             std::int64_t gen_len);
  bool active() const { return session_ != nullptr; }
  /// Tokens produced so far per sequence (1 after begin()).
  std::int64_t step_index() const;
  bool done() const;
  /// Decode one token for every sequence. Requires an active, not-done
  /// session.
  void step();
  /// Close the session and return the accumulated result + accounting.
  /// Requires done().
  GenerationResult finish();

  // -- checkpoint / restore (implemented in checkpoint.cpp) ---------------

  /// Serialize the active session (progress, RNG state, fault-injection
  /// schedule positions, and every KV cache) to `path` after quiescing
  /// in-flight prefetches. Returns the payload size in bytes.
  std::size_t snapshot(const std::string& path);
  /// Rebuild a session from a checkpoint written by snapshot(). The
  /// checkpoint's config fingerprint must match this Generator's config
  /// (else CheckpointMismatch); corrupt or truncated files surface the
  /// typed errors in util/status.hpp. Throws CheckError if a session is
  /// already active.
  void resume(const std::string& path);

 private:
  /// In-flight generation state — everything a checkpoint must capture
  /// besides the (reconstructible) weights and the RNG/fault streams.
  struct Session {
    std::vector<std::vector<std::int64_t>> prompts;
    std::int64_t gen_len = 0;
    std::vector<std::vector<std::int64_t>> tokens;  ///< produced so far
    std::vector<std::int64_t> next;  ///< last sampled token per sequence
    std::int64_t produced = 0;       ///< tokens per sequence so far
    double prefill_seconds = 0.0;
    double decode_seconds = 0.0;
    std::vector<SequenceCache> caches;
    std::vector<SequenceCache*> cache_ptrs;
    /// Pins on the prefix-cache chains this session published or matched;
    /// released (not copied) when the session ends or is swapped out.
    std::vector<std::shared_ptr<kvshare::PrefixLease>> leases;
  };

  // -- adaptive parallelism control ---------------------------------------
  // begin() seeds the controller with the believed Algorithm-3 inputs and
  // (if needed) enables the global TraceRecorder the decode spans feed;
  // every window_steps step()s fold_adaptive_window() aggregates the new
  // spans into a WindowSample, asks the controller, and applies a changed
  // plan by resizing the compute / prefetch pools between steps — never
  // mid-step, so the resize's drain cannot strand a forward pass.
  void start_adaptive(std::size_t batch, std::int64_t prompt_len,
                      std::int64_t gen_len);
  void fold_adaptive_window();
  void stop_adaptive();

  SequenceCache make_sequence_cache();
  /// Prefix-share path: match `prompt`, build SharedKVCache layers over the
  /// lease, and report how many leading tokens prefill may skip.
  SequenceCache make_shared_sequence_cache(
      const std::vector<std::int64_t>& prompt, std::int64_t& matched_out);
  /// (Re)create every sequence cache for `session` from scratch, matching
  /// prompts against the prefix cache when sharing is on. `matched` is
  /// resized to one skip count per prompt. Used by begin() and by the
  /// integrity recompute rung.
  void build_session_caches(Session& session,
                            std::vector<std::int64_t>& matched);
  /// Recompute rung of the repair ladder: drop all (possibly corrupt)
  /// session caches and rebuild them bit-exactly by re-prefilling the
  /// prompt suffix plus every already-embedded generated token. Never
  /// samples, so the sampling RNG stream is untouched and the retried step
  /// reproduces the clean run's tokens.
  void repair_session_caches();
  /// Publish a finished prefill's prompt KV rows into the prefix cache.
  std::shared_ptr<kvshare::PrefixLease> publish_prefix(
      const std::vector<std::int64_t>& prompt, const SequenceCache& cache);

  RuntimeConfig config_;
  util::Xoshiro256 sampling_rng_;
  std::unique_ptr<MemoryPool> device_pool_;
  std::unique_ptr<MemoryPool> host_pool_;
  /// Disk-tier backing (nullptr when disk_capacity == 0). Declared before
  /// manager_: entries and the staging pipeline hold block handles into
  /// it, so it must outlive the manager.
  std::unique_ptr<store::BlockStore> spill_store_;
  std::unique_ptr<OffloadManager> manager_;
  /// Checksum registry for the offload path. Declared after manager_ (its
  /// metrics live there) and before everything that holds a raw pointer
  /// into it: the manager wiring, the transformer's registered weights,
  /// the prefix cache and every session KV cache.
  std::unique_ptr<integrity::ChecksumRegistry> integrity_;
  std::unique_ptr<Transformer> transformer_;
  std::unique_ptr<parallel::ThreadPool> prefetch_pool_;
  std::unique_ptr<parallel::ThreadPool> compute_pool_;
  std::unique_ptr<PagePool> page_pool_;  ///< when kv_flavor == kPaged
  /// Outlives session_ (declared first): sessions hold leases into it.
  std::unique_ptr<kvshare::PrefixCache> prefix_cache_;
  std::unique_ptr<Session> session_;

  /// Host-pool pressure-callback registration for host→disk demotion;
  /// removed in the destructor. -1 when the disk tier is off.
  int host_relief_id_ = -1;

  std::unique_ptr<parallel::AdaptiveController> adaptive_;
  int adaptive_steps_ = 0;            ///< steps since the last window fold
  std::size_t trace_events_seen_ = 0; ///< global-trace cursor per window
  double adaptive_h2d_seen_ = 0.0;    ///< manager H2D bytes already folded
  bool adaptive_owns_trace_ = false;  ///< we enabled the global recorder
};

}  // namespace lmo::runtime
