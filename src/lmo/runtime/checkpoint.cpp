#include "lmo/runtime/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "lmo/ckpt/format.hpp"
#include "lmo/ckpt/tensor_codec.hpp"
#include "lmo/kvshare/shared_kv_cache.hpp"
#include "lmo/runtime/kv_factory.hpp"
#include "lmo/runtime/window_kv.hpp"
#include "lmo/telemetry/trace.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"

namespace lmo::runtime {
namespace {

void encode_i64_vec(ckpt::ByteWriter& writer,
                    const std::vector<std::int64_t>& values) {
  writer.u64(values.size());
  for (std::int64_t v : values) writer.i64(v);
}

std::vector<std::int64_t> decode_i64_vec(ckpt::ByteReader& reader) {
  const std::uint64_t count = reader.u64();
  std::vector<std::int64_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) values.push_back(reader.i64());
  return values;
}

// KV flavor tags in the cache codec. Distinct from KVFlavor so the wire
// format stays frozen even if the enum is reordered.
constexpr std::uint8_t kDenseTag = 1;
constexpr std::uint8_t kPagedTag = 2;
constexpr std::uint8_t kWindowTag = 3;
constexpr std::uint8_t kSharedTag = 4;

void encode_dense(ckpt::ByteWriter& writer, const KVCache& cache) {
  writer.u8(kDenseTag);
  writer.i64(cache.hidden());
  writer.u8(static_cast<std::uint8_t>(cache.bits()));
  writer.i64(cache.group_size());
  writer.u64(static_cast<std::uint64_t>(cache.length()));
  const auto encode_rows = [&](const std::vector<KVCache::Row>& rows) {
    for (const KVCache::Row& row : rows) {
      if (cache.bits() == 16) {
        ckpt::encode_tensor(writer, row.plain);
      } else {
        ckpt::encode_quantized(writer, row.quantized);
      }
    }
  };
  encode_rows(cache.k_rows());
  encode_rows(cache.v_rows());
}

std::unique_ptr<KVCacheBase> decode_dense(ckpt::ByteReader& reader,
                                          const KVRestoreContext& context) {
  LMO_CHECK_MSG(context.pool != nullptr,
                "dense KV restore needs a memory pool");
  const std::int64_t hidden = reader.i64();
  const int bits = reader.u8();
  const std::int64_t group = reader.i64();
  const std::uint64_t length = reader.u64();
  if (bits != 16 && bits != 8 && bits != 4) {
    throw util::CheckpointCorrupt("dense KV checkpoint has invalid bits " +
                                  std::to_string(bits));
  }
  KvCacheSpec spec;
  spec.hidden = hidden;
  spec.num_layers = 1;
  spec.kv_bits = bits;
  spec.quant_group = group;
  spec.pool = context.pool;
  auto base = MakeLayerKvCache(KVFlavor::kDense, spec);
  auto* cache = static_cast<KVCache*>(base.get());
  if (context.integrity != nullptr) {
    cache->set_integrity(context.integrity, context.kv_region);
  }
  const auto decode_rows = [&] {
    std::vector<KVCache::Row> rows;
    rows.reserve(static_cast<std::size_t>(length));
    for (std::uint64_t i = 0; i < length; ++i) {
      KVCache::Row row;
      if (bits == 16) {
        row.plain = ckpt::decode_tensor(reader);
      } else {
        row.quantized = ckpt::decode_quantized(reader);
      }
      rows.push_back(std::move(row));
    }
    return rows;
  };
  std::vector<KVCache::Row> k = decode_rows();
  std::vector<KVCache::Row> v = decode_rows();
  try {
    cache->restore_rows(std::move(k), std::move(v));
  } catch (const util::CheckError& e) {
    throw util::CheckpointCorrupt(
        std::string("dense KV checkpoint is inconsistent: ") + e.what());
  }
  return base;
}

void encode_paged(ckpt::ByteWriter& writer, const PagedKVCache& cache) {
  writer.u8(kPagedTag);
  writer.i64(cache.length());
  if (cache.length() > 0) {
    // Gathered [length, hidden] matrices; the page structure is a pure
    // function of length so re-appending on restore rebuilds the same
    // block table.
    writer.f32_array(cache.keys().f32());
    writer.f32_array(cache.values().f32());
  }
}

std::unique_ptr<KVCacheBase> decode_paged(ckpt::ByteReader& reader,
                                          const KVRestoreContext& context) {
  LMO_CHECK_MSG(context.page_pool != nullptr,
                "paged KV restore needs a page pool");
  const std::int64_t length = reader.i64();
  KvCacheSpec spec;
  spec.num_layers = 1;
  spec.page_pool = context.page_pool;
  auto owned = MakeLayerKvCache(KVFlavor::kPaged, spec);
  auto* cache = static_cast<PagedKVCache*>(owned.get());
  if (length < 0) {
    throw util::CheckpointCorrupt("paged KV checkpoint has negative length");
  }
  if (length == 0) return owned;
  const std::int64_t hidden = context.page_pool->hidden();
  const std::vector<float> k = reader.f32_array();
  const std::vector<float> v = reader.f32_array();
  const std::size_t expected =
      static_cast<std::size_t>(length) * static_cast<std::size_t>(hidden);
  if (k.size() != expected || v.size() != expected) {
    throw util::CheckpointCorrupt(
        "paged KV checkpoint payload does not match length " +
        std::to_string(length) + " x hidden " + std::to_string(hidden));
  }
  for (std::int64_t t = 0; t < length; ++t) {
    const auto row = [&](const std::vector<float>& src) {
      const auto* base = src.data() + t * hidden;
      return tensor::Tensor::from_values(
          {hidden}, std::vector<float>(base, base + hidden));
    };
    cache->append(row(k), row(v));
  }
  return owned;
}

void encode_window(ckpt::ByteWriter& writer, const WindowKVCache& cache) {
  writer.u8(kWindowTag);
  const std::int64_t hidden =
      static_cast<std::int64_t>(cache.k_ring().size()) / cache.window();
  writer.i64(hidden);
  writer.i64(cache.window());
  writer.i64(cache.appended());
  writer.i64(cache.length());
  writer.f32_array(cache.k_ring());
  writer.f32_array(cache.v_ring());
}

std::unique_ptr<KVCacheBase> decode_window(ckpt::ByteReader& reader,
                                           const KVRestoreContext& context) {
  LMO_CHECK_MSG(context.pool != nullptr,
                "window KV restore needs a memory pool");
  const std::int64_t hidden = reader.i64();
  const std::int64_t window = reader.i64();
  const std::int64_t appended = reader.i64();
  const std::int64_t visible = reader.i64();
  std::vector<float> k_ring = reader.f32_array();
  std::vector<float> v_ring = reader.f32_array();
  if (hidden <= 0 || window <= 0) {
    throw util::CheckpointCorrupt("window KV checkpoint has invalid geometry");
  }
  KvCacheSpec spec;
  spec.hidden = hidden;
  spec.num_layers = 1;
  spec.window_tokens = window;
  spec.pool = context.pool;
  auto base = MakeLayerKvCache(KVFlavor::kWindow, spec);
  auto* cache = static_cast<WindowKVCache*>(base.get());
  try {
    cache->restore(appended, visible, std::move(k_ring), std::move(v_ring));
  } catch (const util::CheckError& e) {
    throw util::CheckpointCorrupt(
        std::string("window KV checkpoint is inconsistent: ") + e.what());
  }
  return base;
}

void encode_shared(ckpt::ByteWriter& writer,
                   const kvshare::SharedKVCache& cache) {
  // Materialize the full chain: shared blocks belong to the prefix cache
  // of the process being snapshot, so the checkpoint carries the gathered
  // rows verbatim (bit-exact f32) and restores a detached, private-only
  // cache — lossless, and independent of what the resuming process has in
  // its own radix tree.
  writer.u8(kSharedTag);
  writer.i64(cache.hidden());
  writer.i64(cache.length());
  if (cache.length() > 0) {
    writer.f32_array(cache.keys().f32());
    writer.f32_array(cache.values().f32());
  }
}

std::unique_ptr<KVCacheBase> decode_shared(ckpt::ByteReader& reader,
                                           const KVRestoreContext& context) {
  LMO_CHECK_MSG(context.pool != nullptr,
                "shared KV restore needs a memory pool");
  const std::int64_t hidden = reader.i64();
  const std::int64_t length = reader.i64();
  if (hidden <= 0 || length < 0) {
    throw util::CheckpointCorrupt("shared KV checkpoint has invalid geometry");
  }
  auto cache = std::make_unique<kvshare::SharedKVCache>(hidden, *context.pool);
  if (length == 0) return cache;
  const std::vector<float> k = reader.f32_array();
  const std::vector<float> v = reader.f32_array();
  const std::size_t expected =
      static_cast<std::size_t>(length) * static_cast<std::size_t>(hidden);
  if (k.size() != expected || v.size() != expected) {
    throw util::CheckpointCorrupt(
        "shared KV checkpoint payload does not match length " +
        std::to_string(length) + " x hidden " + std::to_string(hidden));
  }
  for (std::int64_t t = 0; t < length; ++t) {
    const auto row = [&](const std::vector<float>& src) {
      const auto* base = src.data() + t * hidden;
      return tensor::Tensor::from_values(
          {hidden}, std::vector<float>(base, base + hidden));
    };
    cache->append(row(k), row(v));
  }
  return cache;
}

void encode_fault_states(ckpt::ByteWriter& writer) {
  const std::vector<util::FaultSiteState> states =
      util::FaultInjector::instance().site_states();
  writer.u64(states.size());
  for (const util::FaultSiteState& s : states) {
    writer.string(s.site);
    writer.i64(s.ops);
    writer.i64(s.failures);
    writer.i64(s.allocs_denied);
    writer.u64(s.draws);
  }
}

std::vector<util::FaultSiteState> decode_fault_states(
    ckpt::ByteReader& reader) {
  const std::uint64_t count = reader.u64();
  std::vector<util::FaultSiteState> states;
  states.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    util::FaultSiteState s;
    s.site = reader.string();
    s.ops = reader.i64();
    s.failures = reader.i64();
    s.allocs_denied = reader.i64();
    s.draws = reader.u64();
    states.push_back(std::move(s));
  }
  return states;
}

/// Restore whatever saved sites are still armed; saved sites the current
/// process has not armed are skipped (the caller chose a different chaos
/// profile — that is their prerogative, not corruption).
void apply_fault_states(const std::vector<util::FaultSiteState>& states) {
  auto& injector = util::FaultInjector::instance();
  if (!injector.enabled()) return;
  std::set<std::string> armed;
  for (const auto& s : injector.site_states()) armed.insert(s.site);
  for (const auto& s : states) {
    if (armed.count(s.site) != 0) injector.restore_site_state(s);
  }
}

}  // namespace

void encode_runtime_config(ckpt::ByteWriter& writer,
                           const RuntimeConfig& config) {
  const model::ModelSpec& spec = config.spec;
  writer.string(spec.name);
  writer.i64(spec.num_layers);
  writer.i64(spec.hidden);
  writer.i64(spec.mlp_hidden);
  writer.i64(spec.num_heads);
  writer.i64(spec.vocab);
  writer.u8(static_cast<std::uint8_t>(spec.mlp_matrices));
  writer.u8(static_cast<std::uint8_t>(spec.activation));

  writer.i64(config.device_layers);
  writer.u8(static_cast<std::uint8_t>(config.weight_bits));
  writer.u8(static_cast<std::uint8_t>(config.kv_bits));
  writer.i64(config.quant_group);
  writer.u64(config.device_capacity);
  writer.u64(config.host_capacity);
  // Disk-tier fingerprint (format v3): disk_layers and capacity change the
  // transfer schedule and fault-site draw order, so resuming under a
  // different disk shape must be a CheckpointMismatch. spill_path stays
  // out — it names *where* the store lives, not how generation behaves.
  writer.i64(config.disk_layers);
  writer.u64(config.disk_capacity);
  writer.u64(config.spill_block_bytes);
  writer.u8(static_cast<std::uint8_t>(config.kv_flavor));
  writer.i64(config.page_tokens);
  writer.i64(config.window_tokens);
  writer.u8(config.prefix_share ? 1 : 0);
  writer.i64(config.kv_block_tokens);
  writer.i64(config.prefetch_threads);
  writer.i64(config.recovery.max_transfer_attempts);
  writer.f64(config.recovery.retry_backoff_seconds);
  writer.f64(config.recovery.prefetch_wait_seconds);
  writer.u8(config.recovery.allow_degradation ? 1 : 0);
  writer.i64(config.compute_threads);
  writer.u64(config.seed);
  writer.f64(config.sampling.temperature);
  writer.i64(config.sampling.top_k);
  writer.f64(config.sampling.top_p);
  writer.u64(config.sampling.seed);
}

RuntimeConfig decode_runtime_config(ckpt::ByteReader& reader) {
  RuntimeConfig config;
  model::ModelSpec& spec = config.spec;
  spec.name = reader.string();
  spec.num_layers = reader.i64();
  spec.hidden = reader.i64();
  spec.mlp_hidden = reader.i64();
  spec.num_heads = reader.i64();
  spec.vocab = reader.i64();
  spec.mlp_matrices = reader.u8();
  const std::uint8_t activation = reader.u8();
  if (activation > static_cast<std::uint8_t>(model::Activation::kSilu)) {
    throw util::CheckpointCorrupt("checkpoint has unknown activation tag " +
                                  std::to_string(activation));
  }
  spec.activation = static_cast<model::Activation>(activation);

  config.device_layers = reader.i64();
  config.weight_bits = reader.u8();
  config.kv_bits = reader.u8();
  config.quant_group = reader.i64();
  config.device_capacity = static_cast<std::size_t>(reader.u64());
  config.host_capacity = static_cast<std::size_t>(reader.u64());
  config.disk_layers = reader.i64();
  config.disk_capacity = static_cast<std::size_t>(reader.u64());
  config.spill_block_bytes = static_cast<std::size_t>(reader.u64());
  const std::uint8_t flavor = reader.u8();
  if (flavor > static_cast<std::uint8_t>(KVFlavor::kWindow)) {
    throw util::CheckpointCorrupt("checkpoint has unknown KV flavor tag " +
                                  std::to_string(flavor));
  }
  config.kv_flavor = static_cast<KVFlavor>(flavor);
  config.paged_kv = config.kv_flavor == KVFlavor::kPaged;
  config.page_tokens = reader.i64();
  config.window_tokens = reader.i64();
  config.prefix_share = reader.u8() != 0;
  config.kv_block_tokens = reader.i64();
  config.prefetch_threads = static_cast<int>(reader.i64());
  config.recovery.max_transfer_attempts = static_cast<int>(reader.i64());
  config.recovery.retry_backoff_seconds = reader.f64();
  config.recovery.prefetch_wait_seconds = reader.f64();
  config.recovery.allow_degradation = reader.u8() != 0;
  config.compute_threads = static_cast<int>(reader.i64());
  config.seed = reader.u64();
  config.sampling.temperature = reader.f64();
  config.sampling.top_k = static_cast<int>(reader.i64());
  config.sampling.top_p = reader.f64();
  config.sampling.seed = reader.u64();
  return config;
}

bool runtime_config_equal(const RuntimeConfig& a, const RuntimeConfig& b) {
  return a.spec.name == b.spec.name &&
         a.spec.num_layers == b.spec.num_layers &&
         a.spec.hidden == b.spec.hidden &&
         a.spec.mlp_hidden == b.spec.mlp_hidden &&
         a.spec.num_heads == b.spec.num_heads &&
         a.spec.vocab == b.spec.vocab &&
         a.spec.mlp_matrices == b.spec.mlp_matrices &&
         a.spec.activation == b.spec.activation &&
         a.device_layers == b.device_layers &&
         a.weight_bits == b.weight_bits && a.kv_bits == b.kv_bits &&
         a.quant_group == b.quant_group &&
         a.device_capacity == b.device_capacity &&
         a.host_capacity == b.host_capacity &&
         a.disk_layers == b.disk_layers &&
         a.disk_capacity == b.disk_capacity &&
         a.spill_block_bytes == b.spill_block_bytes &&
         a.kv_flavor == b.kv_flavor &&
         a.page_tokens == b.page_tokens &&
         a.window_tokens == b.window_tokens &&
         a.prefix_share == b.prefix_share &&
         a.kv_block_tokens == b.kv_block_tokens &&
         a.prefetch_threads == b.prefetch_threads &&
         a.recovery.max_transfer_attempts ==
             b.recovery.max_transfer_attempts &&
         a.recovery.retry_backoff_seconds ==
             b.recovery.retry_backoff_seconds &&
         a.recovery.prefetch_wait_seconds ==
             b.recovery.prefetch_wait_seconds &&
         a.recovery.allow_degradation == b.recovery.allow_degradation &&
         a.compute_threads == b.compute_threads && a.seed == b.seed &&
         a.sampling.temperature == b.sampling.temperature &&
         a.sampling.top_k == b.sampling.top_k &&
         a.sampling.top_p == b.sampling.top_p &&
         a.sampling.seed == b.sampling.seed;
}

void encode_kv_cache(ckpt::ByteWriter& writer, const KVCacheBase& cache) {
  if (const auto* dense = dynamic_cast<const KVCache*>(&cache)) {
    encode_dense(writer, *dense);
  } else if (const auto* paged = dynamic_cast<const PagedKVCache*>(&cache)) {
    encode_paged(writer, *paged);
  } else if (const auto* window =
                 dynamic_cast<const WindowKVCache*>(&cache)) {
    encode_window(writer, *window);
  } else if (const auto* shared =
                 dynamic_cast<const kvshare::SharedKVCache*>(&cache)) {
    encode_shared(writer, *shared);
  } else {
    LMO_UNREACHABLE("unknown KV cache flavor in checkpoint encoder");
  }
}

std::unique_ptr<KVCacheBase> decode_kv_cache(ckpt::ByteReader& reader,
                                             const KVRestoreContext& context) {
  const std::uint8_t tag = reader.u8();
  switch (tag) {
    case kDenseTag:
      return decode_dense(reader, context);
    case kPagedTag:
      return decode_paged(reader, context);
    case kWindowTag:
      return decode_window(reader, context);
    case kSharedTag:
      return decode_shared(reader, context);
    default:
      throw util::CheckpointCorrupt("unknown KV cache flavor tag " +
                                    std::to_string(tag));
  }
}

CheckpointMeta read_checkpoint_meta(const std::string& path) {
  const std::vector<std::byte> payload =
      ckpt::read_checkpoint_file(path, ckpt::PayloadKind::kGeneratorState);
  ckpt::ByteReader reader(payload);
  CheckpointMeta meta;
  meta.config = decode_runtime_config(reader);
  meta.num_sequences = static_cast<std::size_t>(reader.u64());
  meta.gen_len = reader.i64();
  meta.produced = reader.i64();
  return meta;
}

std::size_t Generator::snapshot(const std::string& path) {
  LMO_CHECK_MSG(session_ != nullptr, "no active session to snapshot");
  auto& trace = telemetry::TraceRecorder::global();
  telemetry::ScopedSpan span(trace, "ckpt.snapshot", "checkpoint");

  // Barrier: no prefetch may be mid-transfer while we serialize, or the
  // staging set captured implicitly by the fault-site draw counts would
  // not match what the resumed process rebuilds.
  const std::size_t waited = manager_->quiesce();

  const Session& session = *session_;
  ckpt::ByteWriter writer;
  encode_runtime_config(writer, config_);
  writer.u64(session.prompts.size());
  writer.i64(session.gen_len);
  writer.i64(session.produced);
  writer.f64(session.prefill_seconds);
  writer.f64(session.decode_seconds);
  for (std::size_t s = 0; s < session.prompts.size(); ++s) {
    encode_i64_vec(writer, session.prompts[s]);
    encode_i64_vec(writer, session.tokens[s]);
    writer.i64(session.next[s]);
  }
  const auto rng_state = sampling_rng_.state();
  for (std::uint64_t word : rng_state) writer.u64(word);
  encode_fault_states(writer);
  for (const SequenceCache& cache : session.caches) {
    for (const auto& layer_cache : cache) {
      encode_kv_cache(writer, *layer_cache);
    }
  }

  const std::vector<std::byte> payload = writer.take();
  ckpt::write_checkpoint_file(path, ckpt::PayloadKind::kGeneratorState,
                              payload);

  auto& metrics = manager_->metrics();
  metrics.counter("ckpt.snapshot.total").add();
  metrics.gauge("ckpt.snapshot.bytes").add(static_cast<double>(payload.size()));
  metrics.counter("ckpt.quiesce.waited_transfers")
      .add(static_cast<std::uint64_t>(waited));
  return payload.size();
}

void Generator::resume(const std::string& path) {
  LMO_CHECK_MSG(session_ == nullptr,
                "cannot resume while a session is active");
  auto& trace = telemetry::TraceRecorder::global();
  telemetry::ScopedSpan span(trace, "ckpt.restore", "checkpoint");

  const std::vector<std::byte> payload =
      ckpt::read_checkpoint_file(path, ckpt::PayloadKind::kGeneratorState);
  ckpt::ByteReader reader(payload);

  const RuntimeConfig saved = decode_runtime_config(reader);
  if (!runtime_config_equal(saved, config_)) {
    throw util::CheckpointMismatch(
        path + ": checkpoint config fingerprint does not match this "
               "generator (model/quantization/KV/seed settings differ)");
  }

  auto session = std::make_unique<Session>();
  const std::uint64_t num_sequences = reader.u64();
  if (num_sequences == 0) {
    throw util::CheckpointCorrupt(path + ": checkpoint has zero sequences");
  }
  session->gen_len = reader.i64();
  session->produced = reader.i64();
  session->prefill_seconds = reader.f64();
  session->decode_seconds = reader.f64();
  if (session->gen_len <= 0 || session->produced <= 0 ||
      session->produced > session->gen_len) {
    throw util::CheckpointCorrupt(path +
                                  ": checkpoint progress is inconsistent");
  }
  for (std::uint64_t s = 0; s < num_sequences; ++s) {
    session->prompts.push_back(decode_i64_vec(reader));
    session->tokens.push_back(decode_i64_vec(reader));
    session->next.push_back(reader.i64());
    if (session->prompts.back().empty() ||
        static_cast<std::int64_t>(session->tokens.back().size()) !=
            session->produced) {
      throw util::CheckpointCorrupt(
          path + ": sequence " + std::to_string(s) +
          " token progress does not match the produced counter");
    }
  }

  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = reader.u64();
  const std::vector<util::FaultSiteState> fault_states =
      decode_fault_states(reader);

  KVRestoreContext context;
  context.pool = host_pool_.get();
  context.page_pool = page_pool_.get();
  context.integrity =
      config_.integrity.enabled() ? integrity_.get() : nullptr;
  for (std::uint64_t s = 0; s < num_sequences; ++s) {
    SequenceCache cache;
    for (std::int64_t layer = 0; layer < config_.spec.num_layers; ++layer) {
      context.kv_region = "kv.layer" + std::to_string(layer);
      cache.push_back(decode_kv_cache(reader, context));
    }
    session->caches.push_back(std::move(cache));
  }
  if (!reader.exhausted()) {
    throw util::CheckpointCorrupt(
        path + ": " + std::to_string(reader.remaining()) +
        " trailing bytes after the generator state");
  }

  // All-or-nothing: mutate the generator only after the full payload
  // decoded cleanly, so a corrupt file never leaves a half-restored
  // session behind.
  sampling_rng_.set_state(rng_state);
  apply_fault_states(fault_states);
  for (auto& c : session->caches) session->cache_ptrs.push_back(&c);
  session_ = std::move(session);

  auto& metrics = manager_->metrics();
  metrics.counter("ckpt.restore.total").add();
  metrics.gauge("ckpt.restore.bytes").add(static_cast<double>(payload.size()));
}

}  // namespace lmo::runtime
