#include "lmo/runtime/profiler.hpp"

#include <chrono>

#include "lmo/runtime/generator.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {

parallel::ProfileDB profile_attention_op(const model::ModelSpec& spec,
                                         const model::OpGraph& graph,
                                         const std::vector<int>&
                                             thread_counts,
                                         const ProfileOptions& options) {
  LMO_CHECK(!thread_counts.empty());
  LMO_CHECK_GE(options.repeats, 1);
  LMO_CHECK_GT(options.seq_len, 0);
  LMO_CHECK_GT(options.batch, 0);

  // Per-op cost shares from the graph (roofline-weighted: flops dominate
  // GEMMs, bytes dominate scans — use flops + bytes as a simple blend).
  std::vector<double> shares(graph.size());
  double total_cost = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto& op = graph.node(static_cast<model::OpId>(i));
    shares[i] = op.flops + op.bytes;
    total_cost += shares[i];
  }
  LMO_CHECK_GT(total_cost, 0.0);
  for (double& share : shares) share /= total_cost;

  parallel::ProfileDB db;
  for (int threads : thread_counts) {
    LMO_CHECK_GE(threads, 1);
    RuntimeConfig config;
    config.spec = spec;
    config.prefetch_threads = 0;
    config.compute_threads = threads > 1 ? threads : 0;
    config.device_layers = spec.num_layers;  // no transfer noise
    config.seed = options.seed;
    Generator generator(config);

    // Prefill to the measurement context, then time pure decode steps.
    std::vector<std::int64_t> prompt(
        static_cast<std::size_t>(options.seq_len));
    for (std::size_t i = 0; i < prompt.size(); ++i) {
      prompt[i] = static_cast<std::int64_t>(i) % spec.vocab;
    }
    std::vector<std::vector<std::int64_t>> prompts(
        static_cast<std::size_t>(options.batch), prompt);

    double best = 1e30;
    for (int r = 0; r < options.repeats; ++r) {
      const auto result = generator.generate(prompts, 4);
      // Per-layer decode step time: decode phase / (steps × layers).
      const double per_layer =
          result.decode_seconds /
          (3.0 * static_cast<double>(spec.num_layers));
      best = std::min(best, per_layer);
    }
    db.record("decode_layer_step", threads, best);
    for (std::size_t i = 0; i < graph.size(); ++i) {
      db.record(graph.node(static_cast<model::OpId>(i)).name, threads,
                best * shares[i]);
    }
  }
  return db;
}

}  // namespace lmo::runtime
