// Beam-search decoding over the real runtime. Each beam keeps its own
// forked KV caches (KVCacheBase::clone()); every step extends each beam
// with its top candidate tokens and keeps the `beam_width` highest
// cumulative-log-probability hypotheses. Width 1 is exactly greedy.
#pragma once

#include <cstdint>
#include <vector>

#include "lmo/runtime/generator.hpp"

namespace lmo::runtime {

struct BeamSearchConfig {
  int beam_width = 4;
  /// Candidate expansions considered per beam per step (≥ beam_width
  /// guarantees no viable hypothesis is missed in practice).
  int expansions_per_beam = 0;  ///< 0 → beam_width

  void validate() const;
};

struct BeamHypothesis {
  std::vector<std::int64_t> tokens;
  double log_prob = 0.0;  ///< cumulative log p of the generated tokens
};

struct BeamSearchResult {
  /// Final hypotheses, best (highest log_prob) first.
  std::vector<BeamHypothesis> beams;

  const BeamHypothesis& best() const { return beams.front(); }
};

/// Decode `gen_len` tokens for `prompt` with beam search.
BeamSearchResult beam_search(Generator& generator,
                             const std::vector<std::int64_t>& prompt,
                             std::int64_t gen_len,
                             const BeamSearchConfig& config = {});

}  // namespace lmo::runtime
