// Accuracy evaluation for the real runtime: teacher-forced negative
// log-likelihood / perplexity of a continuation under the model. This is
// how the cost of quantization is measured in accuracy terms — the flip
// side of the throughput benefit the performance models quantify.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "lmo/runtime/generator.hpp"

namespace lmo::runtime {

struct EvalResult {
  double nll = 0.0;         ///< total negative log-likelihood (nats)
  double mean_nll = 0.0;    ///< per predicted token
  double perplexity = 0.0;  ///< exp(mean_nll)
  std::int64_t tokens = 0;  ///< predicted positions scored
};

/// Teacher-forced scoring of one sequence: positions [context_len, size)
/// are predicted from their prefixes in a single forward pass (the KV
/// cache makes this exact). `context_len` ≥ 1; the first `context_len`
/// tokens are conditioning only.
EvalResult evaluate_sequence(Generator& generator,
                             std::span<const std::int64_t> tokens,
                             std::int64_t context_len = 1);

/// Aggregate over a corpus of sequences (pooled token count).
EvalResult evaluate_corpus(
    Generator& generator,
    const std::vector<std::vector<std::int64_t>>& sequences,
    std::int64_t context_len = 1);

/// Log-softmax probability of `token` under rank-1 `logits`.
double token_log_prob(const tensor::Tensor& logits, std::int64_t token);

}  // namespace lmo::runtime
