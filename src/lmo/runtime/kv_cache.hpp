// Real KV cache with optional at-rest compression. One instance per
// (layer, sequence). Appends quantize the incoming K/V rows with the real
// group-wise quantizer (matching the paper: "the KV cache is updated
// throughout token generation and quantized at each transformer layer");
// reads expand the whole cache back to f32 — compute never runs on packed
// payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lmo/integrity/integrity.hpp"
#include "lmo/runtime/mempool.hpp"
#include "lmo/tensor/quantize.hpp"
#include "lmo/tensor/tensor.hpp"

namespace lmo::runtime {

/// Interface shared by the cache backends (contiguous KVCache and
/// PagedKVCache): append one token's K/V rows, materialize the full
/// matrices for the attention scan.
class KVCacheBase {
 public:
  virtual ~KVCacheBase() = default;
  virtual void append(const tensor::Tensor& k_row,
                      const tensor::Tensor& v_row) = 0;
  virtual std::int64_t length() const = 0;
  virtual tensor::Tensor keys() const = 0;
  virtual tensor::Tensor values() const = 0;
  /// Roll the cache back to `new_length` tokens (speculative-decoding
  /// rejection, beam pruning). new_length ≤ length().
  virtual void truncate(std::int64_t new_length) = 0;
  /// Deep copy (beam forking). The copy charges its own pool bytes.
  virtual std::unique_ptr<KVCacheBase> clone() const = 0;
};

class KVCache : public KVCacheBase {
 public:
  /// `bits` = 16 keeps rows in f32; 4/8 stores each appended row
  /// compressed. `pool` is charged with the stored bytes.
  KVCache(std::int64_t hidden, int bits, std::int64_t group_size,
          MemoryPool& pool);
  ~KVCache();
  /// Moves must null the source's pool handle: a defaulted move would
  /// leave both objects releasing the same bytes on destruction.
  KVCache(KVCache&& other) noexcept
      : hidden_(other.hidden_),
        bits_(other.bits_),
        group_size_(other.group_size_),
        pool_(other.pool_),
        k_rows_(std::move(other.k_rows_)),
        v_rows_(std::move(other.v_rows_)),
        length_(other.length_),
        stored_bytes_(other.stored_bytes_),
        quantize_seconds_(other.quantize_seconds_),
        dequantize_seconds_(other.dequantize_seconds_),
        integrity_(other.integrity_),
        region_(std::move(other.region_)),
        k_crcs_(std::move(other.k_crcs_)),
        v_crcs_(std::move(other.v_crcs_)) {
    other.pool_ = nullptr;
    other.stored_bytes_ = 0;
    other.length_ = 0;
  }
  KVCache(const KVCache&) = delete;
  KVCache& operator=(const KVCache&) = delete;

  /// Append one token's key and value rows (rank-1, extent = hidden).
  void append(const tensor::Tensor& k_row,
              const tensor::Tensor& v_row) override;

  std::int64_t length() const override { return length_; }
  std::int64_t hidden() const { return hidden_; }
  int bits() const { return bits_; }
  std::int64_t group_size() const { return group_size_; }

  /// Materialize the full K (or V) matrix [length, hidden] in f32,
  /// dequantizing stored rows as needed.
  tensor::Tensor keys() const override;
  tensor::Tensor values() const override;
  void truncate(std::int64_t new_length) override;
  std::unique_ptr<KVCacheBase> clone() const override;

  /// Bytes currently charged to the pool.
  std::size_t stored_bytes() const { return stored_bytes_; }

  /// Cumulative time spent (de)quantizing rows, seconds.
  double quantize_seconds() const { return quantize_seconds_; }
  double dequantize_seconds() const;

  /// One stored token row: exactly one of the members is defined.
  struct Row {
    tensor::Tensor plain;               ///< f32 when bits == 16
    tensor::QuantizedTensor quantized;  ///< otherwise
  };

  /// Stored rows in append order — checkpoint serialization reads these
  /// directly so quantized rows round-trip bit-exactly (re-quantizing a
  /// dequantized row would drift).
  const std::vector<Row>& k_rows() const { return k_rows_; }
  const std::vector<Row>& v_rows() const { return v_rows_; }

  /// Adopt restored rows verbatim into an empty cache, charging the pool
  /// for their residency. Rows must match this cache's hidden size and
  /// compression mode; throws CheckError otherwise.
  void restore_rows(std::vector<Row> k, std::vector<Row> v);

  /// Attach the integrity layer (owned by the caller; may be null). Each
  /// appended row's stored payload is fingerprinted; materialize() re-checks
  /// rows per the registry's policy (ordinal = row index) and throws
  /// DataCorruption on mismatch — the Generator repairs by recomputing the
  /// cache from the token history. `region` labels this cache in errors
  /// (e.g. "kv.seq0.layer3"). Must be called while the cache is empty.
  void set_integrity(integrity::ChecksumRegistry* registry,
                     std::string region);

 private:
  tensor::Tensor materialize(const std::vector<Row>& rows,
                             const std::vector<std::uint32_t>& crcs) const;
  Row make_row(const tensor::Tensor& row);
  std::size_t row_bytes(const Row& row) const;

  std::int64_t hidden_;
  int bits_;
  std::int64_t group_size_;
  MemoryPool* pool_;
  std::vector<Row> k_rows_;
  std::vector<Row> v_rows_;
  std::int64_t length_ = 0;
  std::size_t stored_bytes_ = 0;
  double quantize_seconds_ = 0.0;
  mutable double dequantize_seconds_ = 0.0;
  integrity::ChecksumRegistry* integrity_ = nullptr;
  std::string region_;
  /// Per-row fingerprints of the stored payload bytes, recorded at append
  /// (empty when no integrity layer is attached).
  std::vector<std::uint32_t> k_crcs_, v_crcs_;
};

}  // namespace lmo::runtime
