#include "lmo/runtime/paged_kv.hpp"

#include <cstring>

#include "lmo/util/check.hpp"

namespace lmo::runtime {

PagePool::PagePool(std::int64_t hidden, std::int64_t page_tokens,
                   MemoryPool& pool)
    : hidden_(hidden), page_tokens_(page_tokens), pool_(&pool) {
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK_GT(page_tokens, 0);
}

std::size_t PagePool::page_bytes() const {
  return static_cast<std::size_t>(2 * page_tokens_ * hidden_) *
         sizeof(float);
}

std::int64_t PagePool::allocate_page() {
  if (!free_list_.empty()) {
    const std::int64_t id = free_list_.back();
    free_list_.pop_back();
    auto& page = pages_[static_cast<std::size_t>(id)];
    LMO_CHECK(!page.in_use);
    page.in_use = true;
    page.charge = PoolCharge(*pool_, page_bytes());
    return id;
  }
  Page page;
  page.storage.assign(static_cast<std::size_t>(2 * page_tokens_ * hidden_),
                      0.0f);
  page.in_use = true;
  page.charge = PoolCharge(*pool_, page_bytes());
  pages_.push_back(std::move(page));
  return static_cast<std::int64_t>(pages_.size() - 1);
}

void PagePool::free_page(std::int64_t page_id) {
  LMO_CHECK_GE(page_id, 0);
  LMO_CHECK_LT(static_cast<std::size_t>(page_id), pages_.size());
  auto& page = pages_[static_cast<std::size_t>(page_id)];
  LMO_CHECK_MSG(page.in_use, "double free of page");
  page.in_use = false;
  page.charge.reset();  // releases the pool bytes
  free_list_.push_back(page_id);
}

std::size_t PagePool::pages_in_use() const {
  std::size_t count = 0;
  for (const auto& page : pages_) count += page.in_use;
  return count;
}

float* PagePool::k_slot(std::int64_t page_id, std::int64_t slot) {
  LMO_CHECK_LT(static_cast<std::size_t>(page_id), pages_.size());
  LMO_CHECK_GE(slot, 0);
  LMO_CHECK_LT(slot, page_tokens_);
  auto& page = pages_[static_cast<std::size_t>(page_id)];
  LMO_CHECK(page.in_use);
  return page.storage.data() + slot * hidden_;
}

float* PagePool::v_slot(std::int64_t page_id, std::int64_t slot) {
  return k_slot(page_id, slot) + page_tokens_ * hidden_;
}

const float* PagePool::k_slot(std::int64_t page_id, std::int64_t slot) const {
  return const_cast<PagePool*>(this)->k_slot(page_id, slot);
}

const float* PagePool::v_slot(std::int64_t page_id, std::int64_t slot) const {
  return const_cast<PagePool*>(this)->v_slot(page_id, slot);
}

PagedKVCache::PagedKVCache(PagePool& pool) : pool_(&pool) {}

PagedKVCache::~PagedKVCache() {
  if (pool_ == nullptr) return;
  for (std::int64_t page : pages_) pool_->free_page(page);
}

PagedKVCache::PagedKVCache(PagedKVCache&& other) noexcept
    : pool_(other.pool_),
      pages_(std::move(other.pages_)),
      length_(other.length_) {
  other.pool_ = nullptr;
  other.pages_.clear();
  other.length_ = 0;
}

void PagedKVCache::append(const tensor::Tensor& k_row,
                          const tensor::Tensor& v_row) {
  LMO_CHECK_EQ(k_row.shape().rank(), 1u);
  LMO_CHECK_EQ(k_row.shape()[0], pool_->hidden());
  LMO_CHECK(k_row.shape() == v_row.shape());

  const std::int64_t slot = length_ % pool_->page_tokens();
  if (slot == 0) pages_.push_back(pool_->allocate_page());
  const std::int64_t page = pages_.back();

  std::memcpy(pool_->k_slot(page, slot), k_row.f32().data(),
              static_cast<std::size_t>(pool_->hidden()) * sizeof(float));
  std::memcpy(pool_->v_slot(page, slot), v_row.f32().data(),
              static_cast<std::size_t>(pool_->hidden()) * sizeof(float));
  ++length_;
}

tensor::Tensor PagedKVCache::gather(bool keys) const {
  LMO_CHECK_GT(length_, 0);
  tensor::Tensor out = tensor::Tensor::zeros({length_, pool_->hidden()});
  auto dst = out.f32();
  for (std::int64_t i = 0; i < length_; ++i) {
    const std::int64_t page =
        pages_[static_cast<std::size_t>(i / pool_->page_tokens())];
    const std::int64_t slot = i % pool_->page_tokens();
    const float* src =
        keys ? pool_->k_slot(page, slot) : pool_->v_slot(page, slot);
    std::memcpy(dst.data() + i * pool_->hidden(), src,
                static_cast<std::size_t>(pool_->hidden()) * sizeof(float));
  }
  return out;
}

void PagedKVCache::truncate(std::int64_t new_length) {
  LMO_CHECK_GE(new_length, 0);
  LMO_CHECK_LE(new_length, length_);
  length_ = new_length;
  const std::int64_t pages_needed =
      (length_ + pool_->page_tokens() - 1) / pool_->page_tokens();
  while (static_cast<std::int64_t>(pages_.size()) > pages_needed) {
    pool_->free_page(pages_.back());
    pages_.pop_back();
  }
}

tensor::Tensor PagedKVCache::keys() const { return gather(true); }

tensor::Tensor PagedKVCache::values() const { return gather(false); }

std::unique_ptr<KVCacheBase> PagedKVCache::clone() const {
  auto copy = std::make_unique<PagedKVCache>(*pool_);
  for (std::size_t i = 0; i < pages_.size(); ++i) {
    const std::int64_t page = pool_->allocate_page();
    copy->pages_.push_back(page);
    for (std::int64_t slot = 0; slot < pool_->page_tokens(); ++slot) {
      std::memcpy(pool_->k_slot(page, slot), pool_->k_slot(pages_[i], slot),
                  static_cast<std::size_t>(pool_->hidden()) * sizeof(float));
      std::memcpy(pool_->v_slot(page, slot), pool_->v_slot(pages_[i], slot),
                  static_cast<std::size_t>(pool_->hidden()) * sizeof(float));
    }
  }
  copy->length_ = length_;
  return copy;
}

std::int64_t PagedKVCache::wasted_slots() const {
  if (pages_.empty()) return 0;
  return static_cast<std::int64_t>(pages_.size()) * pool_->page_tokens() -
         length_;
}

PagingUtilization paging_utilization(
    std::int64_t hidden, std::int64_t page_tokens, std::int64_t max_seq_len,
    const std::vector<std::int64_t>& actual_lengths) {
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK_GT(page_tokens, 0);
  LMO_CHECK_GT(max_seq_len, 0);
  PagingUtilization util;
  const double row_bytes = 2.0 * static_cast<double>(hidden) * sizeof(float);
  for (std::int64_t length : actual_lengths) {
    LMO_CHECK_GE(length, 0);
    LMO_CHECK_LE(length, max_seq_len);
    util.contiguous_bytes += static_cast<double>(max_seq_len) * row_bytes;
    const std::int64_t pages = (length + page_tokens - 1) / page_tokens;
    util.paged_bytes +=
        static_cast<double>(pages * page_tokens) * row_bytes;
  }
  return util;
}

}  // namespace lmo::runtime
