#include "lmo/runtime/evaluate.hpp"

#include <cmath>

#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {

double token_log_prob(const tensor::Tensor& logits, std::int64_t token) {
  LMO_CHECK_EQ(logits.shape().rank(), 1u);
  auto p = logits.f32();
  LMO_CHECK_GE(token, 0);
  LMO_CHECK_LT(token, static_cast<std::int64_t>(p.size()));
  float mx = p[0];
  for (float x : p) mx = std::max(mx, x);
  double sum = 0.0;
  for (float x : p) sum += std::exp(static_cast<double>(x - mx));
  return static_cast<double>(p[static_cast<std::size_t>(token)] - mx) -
         std::log(sum);
}

EvalResult evaluate_sequence(Generator& generator,
                             std::span<const std::int64_t> tokens,
                             std::int64_t context_len) {
  LMO_CHECK_GE(context_len, 1);
  LMO_CHECK_GT(static_cast<std::int64_t>(tokens.size()), context_len);

  auto& transformer = generator.transformer();
  auto cache = transformer.make_cache(generator.config().kv_bits,
                                      generator.config().quant_group,
                                      generator.host_pool());

  // One forward pass over the whole sequence; the causal mask inside
  // attention makes every row's hidden state depend only on its prefix.
  std::vector<tensor::Tensor> states = {transformer.embed(tokens)};
  std::vector<SequenceCache*> caches = {&cache};
  transformer.forward(states, caches);

  EvalResult result;
  const std::int64_t rows = states[0].shape()[0];
  for (std::int64_t pos = context_len - 1; pos + 1 < rows; ++pos) {
    // logits() scores the last row of the slice [0, pos] → predicts pos+1.
    const tensor::Tensor row_logits =
        transformer.logits(tensor::slice_rows(states[0], 0, pos + 1));
    result.nll += -token_log_prob(
        row_logits, tokens[static_cast<std::size_t>(pos + 1)]);
    ++result.tokens;
  }
  LMO_CHECK_GT(result.tokens, 0);
  result.mean_nll = result.nll / static_cast<double>(result.tokens);
  result.perplexity = std::exp(result.mean_nll);
  return result;
}

EvalResult evaluate_corpus(
    Generator& generator,
    const std::vector<std::vector<std::int64_t>>& sequences,
    std::int64_t context_len) {
  LMO_CHECK(!sequences.empty());
  EvalResult pooled;
  for (const auto& seq : sequences) {
    const EvalResult one = evaluate_sequence(generator, seq, context_len);
    pooled.nll += one.nll;
    pooled.tokens += one.tokens;
  }
  pooled.mean_nll = pooled.nll / static_cast<double>(pooled.tokens);
  pooled.perplexity = std::exp(pooled.mean_nll);
  return pooled;
}

}  // namespace lmo::runtime
