// Offload manager: owns every weight tensor, tracks its home tier (device
// pool vs host pool), compresses host-resident tensors with the real
// group-wise quantizer, and serves fetches — synchronously or as an
// asynchronous prefetch on a thread pool (the runtime's analogue of
// Algorithm 1's load_weight task). Byte counters record the traffic the
// paper's Table 1 accounts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "lmo/parallel/threadpool.hpp"
#include "lmo/runtime/mempool.hpp"
#include "lmo/tensor/quantize.hpp"
#include "lmo/tensor/tensor.hpp"

namespace lmo::runtime {

enum class Tier { kDevice, kHost };

struct OffloadStats {
  std::uint64_t fetches = 0;
  std::uint64_t device_hits = 0;       ///< fetch served from device tier
  std::uint64_t staging_hits = 0;      ///< fetch served by a prior prefetch
  double bytes_host_to_device = 0.0;   ///< payload actually moved
  double quantize_seconds = 0.0;       ///< one-time compression at register
  double dequantize_seconds = 0.0;     ///< per-fetch expansion
};

class OffloadManager {
 public:
  /// `quant_bits` = 16 stores host tensors in fp16; 4/8 compresses them
  /// with Algorithm 2 at `group_size`.
  OffloadManager(MemoryPool& device_pool, MemoryPool& host_pool,
                 int quant_bits = 16, std::int64_t group_size = 64);

  /// Register a tensor under `name` with home `tier`. Device-tier tensors
  /// stay in f32 (compute precision); host-tier tensors are stored fp16 or
  /// quantized. Charges the matching pool.
  void register_tensor(const std::string& name, tensor::Tensor value,
                       Tier tier);

  bool contains(const std::string& name) const;
  Tier tier_of(const std::string& name) const;
  std::size_t stored_bytes(const std::string& name) const;

  /// Fetch for compute: returns an f32 tensor. Host-tier tensors are
  /// "transferred" (counted) and dequantized/upcast on the way.
  tensor::Tensor fetch(const std::string& name);

  /// Asynchronous prefetch on `pool`: materializes the tensor off-thread
  /// and parks it in a staging slot that the next fetch() of the same name
  /// consumes without re-transferring — the runtime analogue of Algorithm
  /// 1 overlapping load_weight with compute.
  std::future<void> prefetch(const std::string& name,
                             parallel::ThreadPool& pool);

  const OffloadStats& stats() const { return stats_; }
  int quant_bits() const { return quant_bits_; }

 private:
  struct Entry {
    Tier tier = Tier::kHost;
    // Exactly one of these holds the payload.
    tensor::Tensor plain;                   ///< f32 (device) or f16 (host)
    tensor::QuantizedTensor quantized;      ///< host, compressed
    PoolCharge charge;
  };

  tensor::Tensor materialize(const Entry& entry);

  MemoryPool& device_pool_;
  MemoryPool& host_pool_;
  int quant_bits_;
  std::int64_t group_size_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, tensor::Tensor> staged_;
  std::set<std::string> in_flight_;  ///< prefetches not yet staged
  std::condition_variable staged_cv_;
  std::mutex mutex_;
  OffloadStats stats_;
};

}  // namespace lmo::runtime
