// Offload manager: owns every weight tensor, tracks its home tier (device
// pool vs host pool), compresses host-resident tensors with the real
// group-wise quantizer, and serves fetches — synchronously or as an
// asynchronous prefetch on a thread pool (the runtime's analogue of
// Algorithm 1's load_weight task). Byte counters record the traffic the
// paper's Table 1 accounts.
//
// Robustness (see docs/robustness.md): transfers pass through the fault
// injector at sites "offload.fetch.transfer" / "offload.prefetch.transfer".
// Transient failures are retried with bounded exponential backoff; a failed
// or hung prefetch makes the next fetch fall back to a synchronous
// transfer (a watchdog bounds the wait); pool exhaustion at registration
// walks a degradation ladder (evict staged entries, re-quantize 16→8→4)
// before giving up. OffloadStats accounts every recovery action exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "lmo/integrity/integrity.hpp"
#include "lmo/parallel/threadpool.hpp"
#include "lmo/runtime/mempool.hpp"
#include "lmo/store/block_store.hpp"
#include "lmo/store/staging_pipeline.hpp"
#include "lmo/telemetry/metrics.hpp"
#include "lmo/tensor/quantize.hpp"
#include "lmo/tensor/tensor.hpp"

namespace lmo::runtime {

/// Weight home tiers, fastest to slowest. kDisk requires attach_store();
/// disk-resident shards keep only their quantization metadata in host
/// memory — the payload lives in the block store and is staged
/// disk→host→device on fetch.
enum class Tier { kDevice, kHost, kDisk };

/// Snapshot view of the manager's telemetry registry (see
/// kOffloadStatsFields for the field↔metric mapping). Materialized by
/// OffloadManager::stats(); the registry is the source of truth — do not
/// accumulate into these fields directly.
struct OffloadStats {
  std::uint64_t fetches = 0;
  std::uint64_t device_hits = 0;       ///< fetch served from device tier
  std::uint64_t staging_hits = 0;      ///< fetch served by a prior prefetch
  std::uint64_t host_transfers = 0;    ///< successful host→device transfers
  double bytes_host_to_device = 0.0;   ///< payload actually moved
  double quantize_seconds = 0.0;       ///< one-time compression at register
  double dequantize_seconds = 0.0;     ///< per-fetch expansion

  // Recovery accounting. Each counter matches the corresponding injector /
  // ladder event exactly (asserted by the chaos tests).
  std::uint64_t transfer_retries = 0;   ///< failed attempts that were retried
  std::uint64_t transfer_failures = 0;  ///< retry budget exhausted (thrown)
  std::uint64_t prefetch_failures = 0;  ///< async loads that gave up
  std::uint64_t prefetch_timeouts = 0;  ///< fetch watchdog expiries
  std::uint64_t sync_fallbacks = 0;     ///< fetches recovered synchronously
  std::uint64_t prefetch_discards = 0;  ///< late results of abandoned loads
  std::uint64_t degradations = 0;       ///< ladder re-quantize / demote steps
  std::uint64_t staged_evictions = 0;   ///< staging slots evicted by ladder

  // Disk tier (see docs/offload_tiers.md).
  std::uint64_t disk_transfers = 0;     ///< disk→host payload stagings
  double bytes_disk_to_host = 0.0;      ///< payload bytes read off the store
  std::uint64_t disk_spills = 0;        ///< shards demoted host→disk
};

/// One row of the OffloadStats↔registry mapping: exactly one of the two
/// member pointers is set, matching the metric's registry type.
struct OffloadStatsField {
  const char* metric;
  std::uint64_t OffloadStats::*u64;
  double OffloadStats::*f64;
};

/// The single source of truth tying every OffloadStats field to its metric
/// name. stats() materializes the struct by walking this table, and the
/// telemetry tests walk it to prove registry and legacy view agree
/// field-for-field.
inline constexpr OffloadStatsField kOffloadStatsFields[] = {
    {"offload.fetch.total", &OffloadStats::fetches, nullptr},
    {"offload.fetch.device_hits", &OffloadStats::device_hits, nullptr},
    {"offload.fetch.staging_hits", &OffloadStats::staging_hits, nullptr},
    {"offload.transfer.total", &OffloadStats::host_transfers, nullptr},
    {"offload.transfer.bytes_host_to_device", nullptr,
     &OffloadStats::bytes_host_to_device},
    {"offload.quantize.seconds", nullptr, &OffloadStats::quantize_seconds},
    {"offload.dequantize.seconds", nullptr,
     &OffloadStats::dequantize_seconds},
    {"offload.transfer.retries", &OffloadStats::transfer_retries, nullptr},
    {"offload.transfer.failures", &OffloadStats::transfer_failures, nullptr},
    {"offload.prefetch.failures", &OffloadStats::prefetch_failures, nullptr},
    {"offload.prefetch.timeouts", &OffloadStats::prefetch_timeouts, nullptr},
    {"offload.fetch.sync_fallbacks", &OffloadStats::sync_fallbacks, nullptr},
    {"offload.prefetch.discards", &OffloadStats::prefetch_discards, nullptr},
    {"offload.degrade.steps", &OffloadStats::degradations, nullptr},
    {"offload.degrade.staged_evictions", &OffloadStats::staged_evictions,
     nullptr},
    {"offload.transfer.disk_total", &OffloadStats::disk_transfers, nullptr},
    {"offload.transfer.bytes_disk_to_host", nullptr,
     &OffloadStats::bytes_disk_to_host},
    {"offload.degrade.disk_spills", &OffloadStats::disk_spills, nullptr},
};

// Every OffloadStats field is 8 bytes (uint64_t or double), so a new field
// changes sizeof and breaks this assert until kOffloadStatsFields gains the
// matching metric row — counters cannot silently diverge from the registry.
static_assert(sizeof(OffloadStats) ==
                  std::size(kOffloadStatsFields) * sizeof(std::uint64_t),
              "OffloadStats and kOffloadStatsFields are out of sync: add the "
              "new field's metric mapping");

/// Knobs for the recovery machinery. The defaults keep fault-free behavior
/// identical to the fail-fast seed (no fault → no retry, no timeout, no
/// degradation ever triggers).
struct RecoveryConfig {
  /// Total transfer attempts (1 initial + up to N-1 retries).
  int max_transfer_attempts = 4;
  /// First retry backoff; doubles per further retry.
  double retry_backoff_seconds = 50e-6;
  /// Watchdog on fetch() waiting for an in-flight prefetch; past this the
  /// prefetch is abandoned and the fetch transfers synchronously.
  /// <= 0 waits forever (the seed behavior).
  double prefetch_wait_seconds = 2.0;
  /// Walk the pool-exhaustion degradation ladder instead of throwing.
  bool allow_degradation = true;

  void validate() const;
};

class OffloadManager {
 public:
  /// `quant_bits` = 16 stores host tensors in fp16; 4/8 compresses them
  /// with Algorithm 2 at `group_size`.
  OffloadManager(MemoryPool& device_pool, MemoryPool& host_pool,
                 int quant_bits = 16, std::int64_t group_size = 64);

  /// Attach the disk tier: a block store for spilled payloads plus an
  /// optional thread pool for the async disk→host staging pipeline (null =
  /// synchronous disk reads). Both are owned by the caller and must
  /// outlive the manager; call before registering kDisk tensors or
  /// enabling host→disk demotion.
  void attach_store(store::BlockStore* store, parallel::ThreadPool* pool);

  /// Register a tensor under `name` with home `tier`. Device-tier tensors
  /// stay in f32 (compute precision); host-tier tensors are stored fp16 or
  /// quantized; disk-tier tensors are quantized the same way and spilled
  /// to the attached store. Charges the matching pool; on exhaustion walks
  /// the degradation ladder (device: evict staged, demote to host; host:
  /// re-quantize 16→8→4, then spill to disk when a store is attached)
  /// before surfacing ResourceExhausted.
  void register_tensor(const std::string& name, tensor::Tensor value,
                       Tier tier);

  /// Spill the coldest host-tier shards to the attached store until at
  /// least `bytes_needed` host-pool bytes are released (or no cold shard
  /// remains). Shards referenced by an in-flight fetch or prefetch are
  /// skipped. Returns the bytes actually freed. This is the manager's half
  /// of the MemoryPool pressure-callback contract: it never charges the
  /// host pool, only releases.
  std::size_t demote_host_to_disk(std::size_t bytes_needed);

  bool contains(const std::string& name) const;
  Tier tier_of(const std::string& name) const;
  std::size_t stored_bytes(const std::string& name) const;

  /// Fetch for compute: returns an f32 tensor. Host-tier tensors are
  /// "transferred" (counted) and dequantized/upcast on the way. Transient
  /// transfer failures are retried; only an exhausted retry budget throws
  /// TransferError.
  tensor::Tensor fetch(const std::string& name);

  /// Asynchronous prefetch on `pool`: materializes the tensor off-thread
  /// and parks it in a staging slot that the next fetch() of the same name
  /// consumes without re-transferring — the runtime analogue of Algorithm
  /// 1 overlapping load_weight with compute. A prefetch that fails after
  /// retries completes its future *normally* and marks the name so the
  /// next fetch falls back to a synchronous transfer; only contract
  /// violations propagate through the future.
  std::future<void> prefetch(const std::string& name,
                             parallel::ThreadPool& pool);

  /// Legacy stats view, materialized from the telemetry registry via
  /// kOffloadStatsFields. Returns by value: a consistent snapshot, safe to
  /// hold while other threads keep recording.
  OffloadStats stats() const;

  /// The manager's own metrics registry ("offload.*" namespace). Owned per
  /// instance so two managers in one process never mix counters.
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }

  int quant_bits() const { return quant_bits_; }

  void set_recovery(const RecoveryConfig& recovery);
  const RecoveryConfig& recovery() const { return recovery_; }

  /// Attach the integrity layer (owned by the caller, typically the
  /// Generator; may be null = no verification). Must be set before weights
  /// are registered so their fingerprints are recorded; host-tier tensors
  /// registered while attached are verified on fetch per the registry's
  /// policy and repaired by re-reading the pristine stored entry.
  void set_integrity(integrity::ChecksumRegistry* registry);

  /// Staging slots currently occupied (prefetched, not yet consumed).
  std::size_t staged_count() const;

  /// Barrier: block until no prefetch is in flight, so a checkpoint never
  /// races a transfer that is still mutating staging state. Returns the
  /// number of in-flight transfers that were waited out.
  std::size_t quiesce();

 private:
  /// Host-resident metadata for a disk-tier entry: everything needed to
  /// rebuild the stored representation bit-exactly from the block store's
  /// payload bytes. Group min/scale stay host-resident (they are
  /// 1/group_size of the payload) so a staged read needs exactly one store
  /// round-trip.
  struct DiskMeta {
    bool is_quantized = false;
    tensor::Shape shape;            ///< original (f32) shape
    int bits = 16;
    std::int64_t group_size = 0;
    std::int64_t padded_numel = 0;
    std::vector<float> group_min;
    std::vector<float> group_scale;
    store::BlockHandle handle;
  };

  struct Entry {
    Tier tier = Tier::kHost;
    // Exactly one of these holds the payload (disk: only metadata here).
    tensor::Tensor plain;                   ///< f32 (device) or f16 (host)
    tensor::QuantizedTensor quantized;      ///< host, compressed
    std::optional<DiskMeta> disk;           ///< disk, spilled
    PoolCharge charge;
    std::uint64_t last_use = 0;  ///< recency for coldest-first demotion
  };

  struct StagedEntry {
    tensor::Tensor value;
    PoolCharge charge;  ///< device-side staging buffer
  };

  tensor::Tensor materialize(const Entry& entry);
  /// One transfer with injected faults, bounded-backoff retries and stats
  /// accounting. Called without the manager lock. `name` keys the entry's
  /// integrity fingerprint: arrivals may be bit-flipped by the injector and
  /// are CRC-verified per policy, with corrupt arrivals repaired by
  /// re-reading the pristine stored entry (the weights rung of the repair
  /// ladder) before DataCorruption is thrown.
  tensor::Tensor transfer_with_retries(const Entry& entry,
                                       const std::string& name,
                                       const char* site);
  std::size_t payload_bytes(const Entry& entry) const;
  /// Drop every staging slot (ladder rung); returns freed charge count.
  std::size_t evict_staged_locked();
  /// Insert the finished entry under the manager lock.
  void insert_entry(const std::string& name, Entry entry);
  /// Quantize `value` per quant_bits_, write the payload to the store and
  /// turn `entry` into a disk-tier entry (recording the integrity
  /// fingerprint). Called without the manager lock.
  void spill_value_to_disk(const std::string& name, Entry& entry,
                           const tensor::Tensor& value);
  /// Stage a disk payload (pipeline when attached, else a synchronous
  /// store read), rebuild the stored representation and run it through the
  /// normal verified host→device transfer. Called without the manager
  /// lock; disk metrics are counted here, host→device accounting stays
  /// with the caller.
  tensor::Tensor fetch_from_disk(const std::string& name,
                                 const DiskMeta& meta, const char* site);

  MemoryPool& device_pool_;
  MemoryPool& host_pool_;
  int quant_bits_;
  std::int64_t group_size_;
  RecoveryConfig recovery_;
  integrity::ChecksumRegistry* integrity_ = nullptr;
  store::BlockStore* store_ = nullptr;              ///< disk tier; optional
  std::unique_ptr<store::StagingPipeline> pipeline_;  ///< null = sync reads
  std::uint64_t use_clock_ = 0;  ///< advances on fetch/prefetch (recency)
  std::map<std::string, Entry> entries_;
  std::map<std::string, StagedEntry> staged_;
  /// Names whose Entry is being read outside the lock (sync fetch, prefetch
  /// task, in-progress demotion). Demotion must not mutate such an entry.
  std::map<std::string, int> busy_;
  std::set<std::string> in_flight_;   ///< prefetches not yet staged
  std::set<std::string> failed_;      ///< prefetches that gave up
  std::set<std::string> abandoned_;   ///< timed-out prefetches to discard
  std::condition_variable staged_cv_;
  mutable std::mutex mutex_;

  telemetry::MetricsRegistry metrics_;
  // Hot-path handles into metrics_, resolved once in the constructor
  // (registry lookups take a map find under a mutex; these are lock-free
  // atomic bumps).
  telemetry::Counter* fetches_;
  telemetry::Counter* device_hits_;
  telemetry::Counter* staging_hits_;
  telemetry::Counter* host_transfers_;
  telemetry::Gauge* bytes_host_to_device_;
  telemetry::Gauge* quantize_seconds_;
  telemetry::Gauge* dequantize_seconds_;
  telemetry::Counter* transfer_retries_;
  telemetry::Counter* transfer_failures_;
  telemetry::Counter* prefetch_failures_;
  telemetry::Counter* prefetch_timeouts_;
  telemetry::Counter* sync_fallbacks_;
  telemetry::Counter* prefetch_discards_;
  telemetry::Counter* degradations_;
  telemetry::Counter* staged_evictions_;
  telemetry::Counter* disk_transfers_;
  telemetry::Gauge* bytes_disk_to_host_;
  telemetry::Counter* disk_spills_;
};

}  // namespace lmo::runtime
