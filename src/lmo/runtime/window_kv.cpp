#include "lmo/runtime/window_kv.hpp"

#include <cstring>

#include "lmo/util/check.hpp"

namespace lmo::runtime {

WindowKVCache::WindowKVCache(std::int64_t hidden, std::int64_t window,
                             MemoryPool& pool)
    : hidden_(hidden), window_(window), pool_(&pool) {
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK_GT(window, 0);
  const std::size_t ring_elems =
      static_cast<std::size_t>(window_ * hidden_);
  k_ring_.assign(ring_elems, 0.0f);
  v_ring_.assign(ring_elems, 0.0f);
  pool_->charge(2 * ring_elems * sizeof(float));
}

WindowKVCache::~WindowKVCache() {
  if (pool_ != nullptr) {
    pool_->release(2 * static_cast<std::size_t>(window_ * hidden_) *
                   sizeof(float));
  }
}

WindowKVCache::WindowKVCache(WindowKVCache&& other) noexcept
    : hidden_(other.hidden_),
      window_(other.window_),
      pool_(other.pool_),
      k_ring_(std::move(other.k_ring_)),
      v_ring_(std::move(other.v_ring_)),
      appended_(other.appended_),
      visible_(other.visible_) {
  other.pool_ = nullptr;
}

void WindowKVCache::append(const tensor::Tensor& k_row,
                           const tensor::Tensor& v_row) {
  LMO_CHECK_EQ(k_row.shape().rank(), 1u);
  LMO_CHECK_EQ(k_row.shape()[0], hidden_);
  LMO_CHECK(k_row.shape() == v_row.shape());
  const std::int64_t slot = appended_ % window_;
  std::memcpy(k_ring_.data() + slot * hidden_, k_row.f32().data(),
              static_cast<std::size_t>(hidden_) * sizeof(float));
  std::memcpy(v_ring_.data() + slot * hidden_, v_row.f32().data(),
              static_cast<std::size_t>(hidden_) * sizeof(float));
  ++appended_;
  visible_ = std::min(window_, visible_ + 1);
}

std::int64_t WindowKVCache::length() const { return visible_; }

tensor::Tensor WindowKVCache::gather(const std::vector<float>& ring) const {
  LMO_CHECK_GT(visible_, 0);
  tensor::Tensor out = tensor::Tensor::zeros({visible_, hidden_});
  auto dst = out.f32();
  // Oldest-visible first, preserving temporal order within the window.
  const std::int64_t oldest = appended_ - visible_;
  for (std::int64_t i = 0; i < visible_; ++i) {
    const std::int64_t slot = (oldest + i) % window_;
    std::memcpy(dst.data() + i * hidden_, ring.data() + slot * hidden_,
                static_cast<std::size_t>(hidden_) * sizeof(float));
  }
  return out;
}

tensor::Tensor WindowKVCache::keys() const { return gather(k_ring_); }

tensor::Tensor WindowKVCache::values() const { return gather(v_ring_); }

void WindowKVCache::truncate(std::int64_t new_length) {
  LMO_CHECK_GE(new_length, 0);
  LMO_CHECK_LE(new_length, visible_);
  // Dropping the newest (visible − new_length) rows: rewind the append
  // cursor; ring contents for the retained prefix are untouched.
  appended_ -= visible_ - new_length;
  visible_ = new_length;
}

void WindowKVCache::restore(std::int64_t appended, std::int64_t visible,
                            std::vector<float> k_ring,
                            std::vector<float> v_ring) {
  LMO_CHECK_MSG(appended_ == 0, "restore requires a fresh window cache");
  LMO_CHECK_GE(appended, 0);
  LMO_CHECK_GE(visible, 0);
  LMO_CHECK_LE(visible, std::min(appended, window_));
  const std::size_t ring_elems = static_cast<std::size_t>(window_ * hidden_);
  LMO_CHECK_EQ(k_ring.size(), ring_elems);
  LMO_CHECK_EQ(v_ring.size(), ring_elems);
  // No pool charge: the constructor already charged the full fixed-size
  // ring, which is this cache's entire residency.
  k_ring_ = std::move(k_ring);
  v_ring_ = std::move(v_ring);
  appended_ = appended;
  visible_ = visible;
}

std::unique_ptr<KVCacheBase> WindowKVCache::clone() const {
  auto copy = std::make_unique<WindowKVCache>(hidden_, window_, *pool_);
  copy->k_ring_ = k_ring_;
  copy->v_ring_ = v_ring_;
  copy->appended_ = appended_;
  copy->visible_ = visible_;
  return copy;
}

}  // namespace lmo::runtime
