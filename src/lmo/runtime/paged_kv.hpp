// Paged KV cache — the vLLM-style allocation scheme the paper's related
// work points at (Kwon et al., SOSP'23), implemented over the same memory
// pools as the contiguous cache. Token slots live in fixed-size pages
// allocated on demand from a shared PagePool; sequences of very different
// lengths share the pool without per-sequence over-reservation, and
// freeing a sequence returns whole pages.
//
// This substrate quantifies the memory-utilization argument: contiguous
// per-sequence reservations waste capacity on short sequences, pages waste
// at most (page_size − 1) slots per sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lmo/runtime/kv_cache.hpp"
#include "lmo/runtime/mempool.hpp"
#include "lmo/tensor/tensor.hpp"

namespace lmo::runtime {

/// Shared page allocator. A page holds `page_tokens` token slots of K and
/// V rows (f32, `hidden` wide each). Pages are charged to the MemoryPool.
class PagePool {
 public:
  PagePool(std::int64_t hidden, std::int64_t page_tokens, MemoryPool& pool);

  std::int64_t hidden() const { return hidden_; }
  std::int64_t page_tokens() const { return page_tokens_; }
  std::size_t page_bytes() const;

  /// Allocate a page id (storage charged to the pool).
  std::int64_t allocate_page();
  void free_page(std::int64_t page_id);

  std::size_t pages_in_use() const;
  std::size_t pages_allocated_total() const { return pages_.size(); }

  /// Raw slot accessors: K and V rows of `slot` within `page`.
  float* k_slot(std::int64_t page_id, std::int64_t slot);
  float* v_slot(std::int64_t page_id, std::int64_t slot);
  const float* k_slot(std::int64_t page_id, std::int64_t slot) const;
  const float* v_slot(std::int64_t page_id, std::int64_t slot) const;

 private:
  struct Page {
    std::vector<float> storage;  ///< [2 × page_tokens × hidden]
    bool in_use = false;
    PoolCharge charge;
  };

  std::int64_t hidden_;
  std::int64_t page_tokens_;
  MemoryPool* pool_;
  std::vector<Page> pages_;
  std::vector<std::int64_t> free_list_;
};

/// One sequence's paged cache: a block table of page ids plus the current
/// length. Implements the same KVCacheBase the transformer consumes.
class PagedKVCache : public KVCacheBase {
 public:
  explicit PagedKVCache(PagePool& pool);
  ~PagedKVCache() override;
  PagedKVCache(PagedKVCache&&) noexcept;
  PagedKVCache(const PagedKVCache&) = delete;
  PagedKVCache& operator=(const PagedKVCache&) = delete;

  void append(const tensor::Tensor& k_row,
              const tensor::Tensor& v_row) override;
  std::int64_t length() const override { return length_; }

  tensor::Tensor keys() const override;  ///< [length, hidden] gathered copy
  tensor::Tensor values() const override;
  void truncate(std::int64_t new_length) override;
  std::unique_ptr<KVCacheBase> clone() const override;

  const std::vector<std::int64_t>& block_table() const { return pages_; }

  /// Slots reserved but unused in the tail page (internal fragmentation).
  std::int64_t wasted_slots() const;

 private:
  tensor::Tensor gather(bool keys) const;

  PagePool* pool_;
  std::vector<std::int64_t> pages_;
  std::int64_t length_ = 0;
};

/// Memory-utilization comparison for a set of sequence lengths: bytes a
/// contiguous max-length reservation would pin vs what paging pins.
struct PagingUtilization {
  double contiguous_bytes = 0.0;  ///< per-sequence max-length reservation
  double paged_bytes = 0.0;       ///< pages actually allocated
  double savings_ratio() const {
    return paged_bytes > 0.0 ? contiguous_bytes / paged_bytes : 0.0;
  }
};

PagingUtilization paging_utilization(std::int64_t hidden,
                                     std::int64_t page_tokens,
                                     std::int64_t max_seq_len,
                                     const std::vector<std::int64_t>&
                                         actual_lengths);

}  // namespace lmo::runtime
