// A real (laptop-scale) pre-LayerNorm transformer executed through the
// offloading substrate: every layer's weights are fetched from the
// OffloadManager (possibly dequantized host payloads), the KV cache is a
// real KVCache (possibly compressed at rest), and all math runs in f32 via
// lmo::tensor ops. The walk is layer-outer so one weight fetch serves every
// sequence in the batch — the same amortization the zig-zag block schedule
// exploits.
//
// Simplifications vs production checkpoints (documented in DESIGN.md):
// tied input/output embeddings, no biases, GELU MLP for all presets.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "lmo/model/llm_config.hpp"
#include "lmo/parallel/threadpool.hpp"
#include "lmo/runtime/kv_cache.hpp"
#include "lmo/runtime/kv_factory.hpp"
#include "lmo/runtime/offload_manager.hpp"
#include "lmo/tensor/tensor.hpp"
#include "lmo/util/rng.hpp"

namespace lmo::runtime {

class Transformer {
 public:
  /// Creates synthetic weights (normal, seeded) and registers them with
  /// `manager`: the first `device_layers` layers live on the device tier,
  /// the last `disk_layers` layers on the disk tier (requires
  /// manager.attach_store()), everything between on the host tier
  /// (streamed on fetch).
  Transformer(const model::ModelSpec& spec, OffloadManager& manager,
              std::int64_t device_layers, std::uint64_t seed,
              std::int64_t disk_layers = 0);

  const model::ModelSpec& spec() const { return spec_; }

  /// Fresh dense per-sequence caches (`spec.num_layers` of them) — a
  /// convenience over runtime::MakeKvCache with this model's dimensions.
  SequenceCache make_cache(int kv_bits, std::int64_t group_size,
                           MemoryPool& pool) const;

  /// Embed a token sequence → [T, h].
  tensor::Tensor embed(std::span<const std::int64_t> tokens);

  /// Intra-op parallelism for the attention kernel: heads are split across
  /// `pool` (nullptr = serial). Heads are independent, so the parallel
  /// result is bit-identical to the serial one.
  void set_compute_pool(parallel::ThreadPool* pool) { compute_pool_ = pool; }

  /// Run all layers over a batch of hidden-state matrices ([T_i, h]),
  /// appending every position to the caches. Layer-outer: weights are
  /// fetched once per layer for the whole batch; with `prefetch` non-null,
  /// layer i+1's weights load asynchronously while layer i computes.
  void forward(std::vector<tensor::Tensor>& states,
               std::vector<SequenceCache*>& caches,
               parallel::ThreadPool* prefetch = nullptr);

  /// Final LayerNorm + tied unembedding of the last row → [vocab].
  tensor::Tensor logits(const tensor::Tensor& state);

  /// Weight-tensor name for OffloadManager lookups, e.g. name(3, "wq").
  static std::string weight_name(std::int64_t layer, const std::string& kind);

 private:
  struct LayerWeights {
    tensor::Tensor wq, wk, wv, wo, w1, w2;
    tensor::Tensor ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
  };

  LayerWeights fetch_layer(std::int64_t layer);
  /// One layer over one sequence: attention (with cache append) + MLP.
  tensor::Tensor layer_forward(const LayerWeights& w, const tensor::Tensor& x,
                               KVCacheBase& cache);
  tensor::Tensor attention(const LayerWeights& w, const tensor::Tensor& x,
                           KVCacheBase& cache);

  model::ModelSpec spec_;
  OffloadManager& manager_;
  parallel::ThreadPool* compute_pool_ = nullptr;
  tensor::Tensor embedding_;  ///< [vocab, h], always device-resident
  tensor::Tensor lnf_gamma_, lnf_beta_;
};

}  // namespace lmo::runtime
