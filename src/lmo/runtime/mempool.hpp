// Capacity-enforcing memory pool. The runtime mirrors the paper's two-tier
// memory (GPU device memory vs host memory) on one machine: tensors live in
// ordinary heap storage, but every allocation is charged against the pool
// of its *logical* device, and exceeding the configured capacity throws —
// which is exactly the failure offloading exists to avoid. Benches and
// tests read the high-water mark.
//
// Overload protection: a pool can carry memory-pressure watermarks
// (overload::WatermarkConfig) and registered pressure callbacks. Crossing
// a watermark upward, or a charge that would exceed capacity, invokes the
// callbacks (outside the pool lock) with the pressure level and a byte
// target; callbacks free what they can (the prefix cache evicts unpinned
// chains) and the charge is retried before the exception-only cliff is
// reached. See docs/robustness.md ("Overload & degradation").
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lmo/overload/watermark.hpp"

namespace lmo::runtime {

class MemoryPool {
 public:
  MemoryPool(std::string name, std::size_t capacity_bytes);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Charge an allocation; throws util::ResourceExhausted (a CheckError
  /// subtype) when it would exceed capacity *after* giving registered
  /// pressure callbacks a chance to free memory. Consults the fault
  /// injector at site "pool.<name>.charge", so chaos suites can deny
  /// allocations (injected denials bypass the callbacks: they model the
  /// allocator failing, not the pool filling).
  void charge(std::size_t bytes);
  /// Non-throwing charge; returns false when the pool cannot afford it
  /// (or the fault injector denies it).
  bool try_charge(std::size_t bytes);
  /// Release a previous charge.
  void release(std::size_t bytes);

  std::size_t used() const;
  std::size_t peak() const;
  std::size_t available() const;

  /// Arm memory-pressure watermarks (validated). Until set, pressure() is
  /// kNone below capacity and callbacks only fire on would-fail charges.
  void set_watermarks(const overload::WatermarkConfig& config);
  const std::optional<overload::WatermarkConfig>& watermarks() const {
    return watermarks_;
  }
  /// Current occupancy's pressure level under the armed watermarks.
  overload::PressureLevel pressure() const;

  /// Pressure callback: asked to free up to `bytes_needed` bytes at the
  /// given level; returns the bytes it actually released. Must be
  /// thread-safe and must not call charge()/try_charge() on this pool.
  /// Callbacks fire outside the pool lock (calling release() is fine).
  using PressureCallback = std::function<std::size_t(
      overload::PressureLevel level, std::size_t bytes_needed)>;
  /// Register a callback; returns an id for remove_pressure_callback().
  int add_pressure_callback(PressureCallback callback);
  void remove_pressure_callback(int id);

 private:
  /// Fire callbacks asking for `bytes_needed`; returns bytes reported
  /// freed. Must be called WITHOUT mutex_ held.
  std::size_t notify_pressure(overload::PressureLevel level,
                              std::size_t bytes_needed);

  std::string name_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::optional<overload::WatermarkConfig> watermarks_;
  /// Highest watermark level already notified (edge-triggered signals);
  /// reset when occupancy drops below the low watermark.
  overload::PressureLevel notified_ = overload::PressureLevel::kNone;

  mutable std::mutex callbacks_mutex_;
  std::vector<std::pair<int, PressureCallback>> callbacks_;
  int next_callback_id_ = 0;
};

/// RAII charge.
class PoolCharge {
 public:
  PoolCharge() = default;
  PoolCharge(MemoryPool& pool, std::size_t bytes);
  ~PoolCharge();
  PoolCharge(PoolCharge&& other) noexcept;
  PoolCharge& operator=(PoolCharge&& other) noexcept;
  PoolCharge(const PoolCharge&) = delete;
  PoolCharge& operator=(const PoolCharge&) = delete;

  std::size_t bytes() const { return bytes_; }
  void reset();

 private:
  MemoryPool* pool_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace lmo::runtime
