// Capacity-enforcing memory pool. The runtime mirrors the paper's two-tier
// memory (GPU device memory vs host memory) on one machine: tensors live in
// ordinary heap storage, but every allocation is charged against the pool
// of its *logical* device, and exceeding the configured capacity throws —
// which is exactly the failure offloading exists to avoid. Benches and
// tests read the high-water mark.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

namespace lmo::runtime {

class MemoryPool {
 public:
  MemoryPool(std::string name, std::size_t capacity_bytes);

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  /// Charge an allocation; throws util::ResourceExhausted (a CheckError
  /// subtype) when it would exceed capacity. Consults the fault injector
  /// at site "pool.<name>.charge", so chaos suites can deny allocations.
  void charge(std::size_t bytes);
  /// Non-throwing charge; returns false when the pool cannot afford it
  /// (or the fault injector denies it).
  bool try_charge(std::size_t bytes);
  /// Release a previous charge.
  void release(std::size_t bytes);

  std::size_t used() const;
  std::size_t peak() const;
  std::size_t available() const;

 private:
  std::string name_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

/// RAII charge.
class PoolCharge {
 public:
  PoolCharge() = default;
  PoolCharge(MemoryPool& pool, std::size_t bytes);
  ~PoolCharge();
  PoolCharge(PoolCharge&& other) noexcept;
  PoolCharge& operator=(PoolCharge&& other) noexcept;
  PoolCharge(const PoolCharge&) = delete;
  PoolCharge& operator=(const PoolCharge&) = delete;

  std::size_t bytes() const { return bytes_; }
  void reset();

 private:
  MemoryPool* pool_ = nullptr;
  std::size_t bytes_ = 0;
};

}  // namespace lmo::runtime
