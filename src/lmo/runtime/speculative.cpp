#include "lmo/runtime/speculative.hpp"

#include <algorithm>

#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {
namespace {

/// Single-sequence decoding state over one model: transformer + caches +
/// how many context tokens the caches currently hold.
class Decoder {
 public:
  explicit Decoder(Generator& generator)
      : transformer_(generator.transformer()),
        cache_(transformer_.make_cache(generator.config().kv_bits,
                                       generator.config().quant_group,
                                       generator.host_pool())) {}

  std::int64_t context() const { return context_; }

  /// Feed `tokens` (appending to the cache); returns the hidden states
  /// [tokens.size(), h].
  tensor::Tensor feed(const std::vector<std::int64_t>& tokens) {
    LMO_CHECK(!tokens.empty());
    std::vector<tensor::Tensor> states = {transformer_.embed(tokens)};
    std::vector<SequenceCache*> caches = {&cache_};
    transformer_.forward(states, caches);
    context_ += static_cast<std::int64_t>(tokens.size());
    return states[0];
  }

  /// Target's greedy choice after row `row` of `states` (0-based).
  std::int64_t argmax_at(const tensor::Tensor& states,
                         std::int64_t row) const {
    return tensor::argmax(
        transformer_.logits(tensor::slice_rows(states, 0, row + 1)));
  }

  /// Roll the caches back to `new_context` tokens.
  void rollback(std::int64_t new_context) {
    LMO_CHECK_LE(new_context, context_);
    for (auto& layer_cache : cache_) layer_cache->truncate(new_context);
    context_ = new_context;
  }

 private:
  Transformer& transformer_;
  SequenceCache cache_;
  std::int64_t context_ = 0;
};

}  // namespace

void SpeculativeConfig::validate() const { LMO_CHECK_GE(draft_tokens, 1); }

SpeculativeResult speculative_generate(Generator& target, Generator& draft,
                                       const std::vector<std::int64_t>&
                                           prompt,
                                       std::int64_t gen_len,
                                       const SpeculativeConfig& config) {
  config.validate();
  LMO_CHECK(!prompt.empty());
  LMO_CHECK_GT(gen_len, 0);
  LMO_CHECK_EQ(target.config().spec.vocab, draft.config().spec.vocab);

  SpeculativeResult result;
  Decoder target_dec(target);
  Decoder draft_dec(draft);

  // Prefill both models; `pending` is the target's next greedy token.
  std::int64_t pending =
      target_dec.argmax_at(target_dec.feed(prompt),
                           static_cast<std::int64_t>(prompt.size()) - 1);
  (void)draft_dec.feed(prompt);

  while (static_cast<std::int64_t>(result.tokens.size()) < gen_len) {
    // `pending` is exactly what vanilla greedy decoding would emit.
    result.tokens.push_back(pending);
    if (static_cast<std::int64_t>(result.tokens.size()) >= gen_len) break;

    // Draft proposes a block autoregressively, starting from `pending`.
    const std::int64_t want = std::min<std::int64_t>(
        config.draft_tokens,
        gen_len - static_cast<std::int64_t>(result.tokens.size()));
    std::vector<std::int64_t> proposal;
    std::int64_t draft_token = pending;
    for (std::int64_t i = 0; i < want; ++i) {
      const auto states = draft_dec.feed({draft_token});
      draft_token = draft_dec.argmax_at(states, 0);
      proposal.push_back(draft_token);
    }
    result.draft_proposed += static_cast<std::int64_t>(proposal.size());

    // Target verifies the whole block in ONE forward pass over
    // [pending, q1, ..., q_{k-1}]: row i's logits give the target's greedy
    // choice after prefix ...pending q1..qi.
    std::vector<std::int64_t> verify_input = {pending};
    verify_input.insert(verify_input.end(), proposal.begin(),
                        proposal.end() - 1);
    const std::int64_t base_context = target_dec.context();
    const auto states = target_dec.feed(verify_input);
    ++result.target_forward_passes;

    std::int64_t accepted = 0;
    std::int64_t next = target_dec.argmax_at(states, 0);
    while (accepted < static_cast<std::int64_t>(proposal.size()) &&
           proposal[static_cast<std::size_t>(accepted)] == next &&
           static_cast<std::int64_t>(result.tokens.size()) < gen_len) {
      result.tokens.push_back(proposal[static_cast<std::size_t>(accepted)]);
      ++result.draft_accepted;
      ++accepted;
      if (accepted < static_cast<std::int64_t>(verify_input.size())) {
        next = target_dec.argmax_at(states, accepted);
      } else {
        break;
      }
    }

    if (accepted == static_cast<std::int64_t>(verify_input.size())) {
      // Whole block matched: `next` is undefined past the last row — feed
      // the final proposal token to learn the follow-up.
      const auto tail = target_dec.feed({proposal.back()});
      ++result.target_forward_passes;
      pending = target_dec.argmax_at(tail, 0);
    } else {
      // Rejection: the target's cache holds rows for the unaccepted
      // suffix — roll back to the true context (prompt + emitted tokens).
      target_dec.rollback(
          base_context + 1 + accepted);  // +1 for `pending`'s row
      pending = next;
    }

    // Re-sync the draft: its cache holds prompt + everything it fed
    // itself, whose prefix matches the true sequence up to exactly
    // prompt + emitted tokens (the rejected speculation suffix diverges).
    // Roll back to that prefix; the next round's seed feed extends it.
    const std::int64_t need =
        static_cast<std::int64_t>(prompt.size()) +
        static_cast<std::int64_t>(result.tokens.size());
    draft_dec.rollback(std::min(draft_dec.context(), need));
    if (draft_dec.context() < need) {
      std::vector<std::int64_t> missing;
      for (std::int64_t pos = draft_dec.context(); pos < need; ++pos) {
        const std::int64_t in_output =
            pos - static_cast<std::int64_t>(prompt.size());
        missing.push_back(
            in_output >= 0
                ? result.tokens[static_cast<std::size_t>(in_output)]
                : prompt[static_cast<std::size_t>(pos)]);
      }
      (void)draft_dec.feed(missing);
    }
  }

  result.tokens.resize(static_cast<std::size_t>(gen_len));
  return result;
}

}  // namespace lmo::runtime
