// Speculative decoding (the related-work direction the paper cites via
// SpecInfer): a small draft model proposes blocks of tokens, the target
// model verifies a whole block in one forward pass, and rejected suffixes
// are rolled back with KVCacheBase::truncate(). The greedy variant here is
// *lossless* — the emitted sequence is bit-identical to the target model
// decoding alone — while the target runs one forward pass per accepted
// block instead of per token.
#pragma once

#include <cstdint>
#include <vector>

#include "lmo/runtime/generator.hpp"

namespace lmo::runtime {

struct SpeculativeConfig {
  int draft_tokens = 4;  ///< proposal block size (k)

  void validate() const;
};

struct SpeculativeResult {
  std::vector<std::int64_t> tokens;      ///< the generated sequence
  std::int64_t draft_proposed = 0;       ///< draft tokens offered
  std::int64_t draft_accepted = 0;       ///< ... accepted by the target
  std::int64_t target_forward_passes = 0;  ///< verify passes (excl. prefill)

  double acceptance_rate() const {
    return draft_proposed > 0
               ? static_cast<double>(draft_accepted) /
                     static_cast<double>(draft_proposed)
               : 0.0;
  }
};

/// Generate `gen_len` tokens for `prompt` with the draft/target pair.
/// Both generators must share the vocabulary; decoding is greedy
/// regardless of their sampling configs (losslessness requires it).
SpeculativeResult speculative_generate(Generator& target, Generator& draft,
                                       const std::vector<std::int64_t>&
                                           prompt,
                                       std::int64_t gen_len,
                                       const SpeculativeConfig& config = {});

}  // namespace lmo::runtime
