#include "lmo/runtime/beam_search.hpp"

#include <algorithm>
#include <cmath>

#include "lmo/runtime/evaluate.hpp"  // token_log_prob
#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {
namespace {

struct Beam {
  SequenceCache cache;
  std::vector<std::int64_t> tokens;  ///< generated so far
  std::int64_t last_token = -1;      ///< next input (prompt tail or newest)
  double log_prob = 0.0;
};

SequenceCache clone_cache(const SequenceCache& cache) {
  SequenceCache copy;
  copy.reserve(cache.size());
  for (const auto& layer : cache) copy.push_back(layer->clone());
  return copy;
}

/// Top `k` token ids of rank-1 logits by value.
std::vector<std::int64_t> top_tokens(const tensor::Tensor& logits, int k) {
  auto p = logits.f32();
  std::vector<std::int64_t> ids(p.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  const auto count = std::min<std::size_t>(static_cast<std::size_t>(k),
                                           ids.size());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(
                                     count),
                    ids.end(), [&](std::int64_t a, std::int64_t b) {
                      return p[static_cast<std::size_t>(a)] >
                             p[static_cast<std::size_t>(b)];
                    });
  ids.resize(count);
  return ids;
}

}  // namespace

void BeamSearchConfig::validate() const {
  LMO_CHECK_GE(beam_width, 1);
  LMO_CHECK_GE(expansions_per_beam, 0);
}

BeamSearchResult beam_search(Generator& generator,
                             const std::vector<std::int64_t>& prompt,
                             std::int64_t gen_len,
                             const BeamSearchConfig& config) {
  config.validate();
  LMO_CHECK(!prompt.empty());
  LMO_CHECK_GT(gen_len, 0);
  const int expansions = config.expansions_per_beam > 0
                             ? config.expansions_per_beam
                             : config.beam_width;

  auto& transformer = generator.transformer();
  const auto forward_one = [&](Beam& beam,
                               const std::vector<std::int64_t>& input) {
    std::vector<tensor::Tensor> states = {transformer.embed(input)};
    std::vector<SequenceCache*> caches = {&beam.cache};
    transformer.forward(states, caches);
    return transformer.logits(states[0]);
  };

  // Root beam: prefill the prompt once.
  std::vector<Beam> beams(1);
  beams[0].cache = transformer.make_cache(generator.config().kv_bits,
                                          generator.config().quant_group,
                                          generator.host_pool());
  tensor::Tensor logits = forward_one(beams[0], prompt);

  for (std::int64_t t = 0; t < gen_len; ++t) {
    // Expand every beam with its top candidates.
    struct Candidate {
      std::size_t beam_index;
      std::int64_t token;
      double log_prob;
    };
    std::vector<Candidate> candidates;
    std::vector<tensor::Tensor> beam_logits;
    beam_logits.reserve(beams.size());
    for (std::size_t b = 0; b < beams.size(); ++b) {
      // Root step reuses the prefill logits; later steps forward the
      // newest token.
      if (t == 0 && b == 0) {
        beam_logits.push_back(logits);
      } else {
        beam_logits.push_back(
            forward_one(beams[b], {beams[b].last_token}));
      }
      for (std::int64_t token : top_tokens(beam_logits[b], expansions)) {
        candidates.push_back(
            {b, token,
             beams[b].log_prob + token_log_prob(beam_logits[b], token)});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.log_prob > b.log_prob;
              });
    candidates.resize(std::min<std::size_t>(
        candidates.size(), static_cast<std::size_t>(config.beam_width)));

    // Build the next beam set, cloning caches when a parent forks.
    std::vector<int> uses(beams.size(), 0);
    for (const Candidate& c : candidates) {
      ++uses[c.beam_index];
    }
    std::vector<Beam> next;
    next.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      Beam child;
      if (--uses[c.beam_index] == 0) {
        child.cache = std::move(beams[c.beam_index].cache);  // last user
      } else {
        child.cache = clone_cache(beams[c.beam_index].cache);
      }
      child.tokens = beams[c.beam_index].tokens;
      child.tokens.push_back(c.token);
      child.last_token = c.token;
      child.log_prob = c.log_prob;
      next.push_back(std::move(child));
    }
    beams = std::move(next);
  }

  BeamSearchResult result;
  result.beams.reserve(beams.size());
  std::sort(beams.begin(), beams.end(), [](const Beam& a, const Beam& b) {
    return a.log_prob > b.log_prob;
  });
  for (const Beam& beam : beams) {
    result.beams.push_back({beam.tokens, beam.log_prob});
  }
  return result;
}

}  // namespace lmo::runtime
