#include "lmo/runtime/kv_factory.hpp"

#include <algorithm>

#include "lmo/runtime/paged_kv.hpp"
#include "lmo/runtime/window_kv.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/status.hpp"

namespace lmo::runtime {

const char* to_string(KVFlavor flavor) {
  switch (flavor) {
    case KVFlavor::kDense:
      return "dense";
    case KVFlavor::kPaged:
      return "paged";
    case KVFlavor::kWindow:
      return "window";
  }
  return "unknown";
}

KVFlavor kv_flavor_from_string(const std::string& name) {
  if (name == "dense") return KVFlavor::kDense;
  if (name == "paged") return KVFlavor::kPaged;
  if (name == "window") return KVFlavor::kWindow;
  throw util::ConfigError("unknown KV flavor '" + name +
                          "' (expected dense, paged or window)");
}

std::unique_ptr<KVCacheBase> MakeLayerKvCache(KVFlavor flavor,
                                              const KvCacheSpec& spec) {
  switch (flavor) {
    case KVFlavor::kDense:
      LMO_CHECK_MSG(spec.pool != nullptr, "dense KV needs a memory pool");
      LMO_CHECK_GT(spec.hidden, 0);
      return std::make_unique<KVCache>(spec.hidden, spec.kv_bits,
                                       spec.quant_group, *spec.pool);
    case KVFlavor::kPaged:
      LMO_CHECK_MSG(spec.page_pool != nullptr, "paged KV needs a page pool");
      return std::make_unique<PagedKVCache>(*spec.page_pool);
    case KVFlavor::kWindow:
      LMO_CHECK_MSG(spec.pool != nullptr, "window KV needs a memory pool");
      LMO_CHECK_GT(spec.hidden, 0);
      LMO_CHECK_GT(spec.window_tokens, 0);
      return std::make_unique<WindowKVCache>(spec.hidden, spec.window_tokens,
                                             *spec.pool);
  }
  LMO_UNREACHABLE("bad KVFlavor");
}

SequenceCache MakeKvCache(KVFlavor flavor, const KvCacheSpec& spec) {
  LMO_CHECK_GT(spec.num_layers, 0);
  SequenceCache cache;
  cache.reserve(static_cast<std::size_t>(spec.num_layers));
  for (std::int64_t layer = 0; layer < spec.num_layers; ++layer) {
    cache.push_back(MakeLayerKvCache(flavor, spec));
  }
  return cache;
}

std::size_t kv_bytes_per_token(std::int64_t hidden, int bits) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(2.0 * static_cast<double>(hidden) *
                                  (static_cast<double>(bits) / 8.0)));
}

}  // namespace lmo::runtime
