// One construction point for every KV-cache backend. Before this factory
// each consumer (the Generator's session setup, the checkpoint decoder,
// the serving simulator's byte accounting, the CLI's --kv parsing) grew
// its own switch over the backends and its own copy of the per-token byte
// math; adding a flavor meant touching all of them. Now the flavor enum,
// the name mapping, the per-layer construction and the at-rest byte
// formula live here, and consumers say what they want, not how to wire it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lmo/runtime/kv_cache.hpp"

namespace lmo::runtime {

class PagePool;

/// All KV caches for one sequence (one per layer), backend-polymorphic.
using SequenceCache = std::vector<std::unique_ptr<KVCacheBase>>;

/// Which KV-cache backend to build per sequence.
enum class KVFlavor : std::uint8_t {
  kDense = 0,   ///< contiguous KVCache, optionally quantized at rest
  kPaged = 1,   ///< vLLM-style PagedKVCache over a shared PagePool
  kWindow = 2,  ///< sliding-window ring (WindowKVCache)
};

const char* to_string(KVFlavor flavor);

/// Parse a flavor name ("dense" | "paged" | "window"), as spelled by the
/// CLI's --kv flag and by to_string. Throws util::ConfigError otherwise.
KVFlavor kv_flavor_from_string(const std::string& name);

/// Everything backend construction can need. Flavors read only their own
/// fields: dense uses kv_bits/quant_group/pool, paged uses page_pool,
/// window uses window_tokens/pool.
struct KvCacheSpec {
  std::int64_t hidden = 0;
  std::int64_t num_layers = 0;
  int kv_bits = 16;
  std::int64_t quant_group = 32;
  std::int64_t window_tokens = 32;
  MemoryPool* pool = nullptr;        ///< dense / window storage
  PagePool* page_pool = nullptr;     ///< paged storage
};

/// Build one layer's cache. Throws CheckError when the spec lacks the
/// fields the flavor needs (e.g. kPaged without a page_pool).
std::unique_ptr<KVCacheBase> MakeLayerKvCache(KVFlavor flavor,
                                              const KvCacheSpec& spec);

/// Build a full per-sequence cache: `spec.num_layers` layers of `flavor`.
SequenceCache MakeKvCache(KVFlavor flavor, const KvCacheSpec& spec);

/// At-rest bytes one token's K + V rows occupy: 2 · hidden · bits / 8,
/// floored at 1. The formula the serving simulator's pool accounting and
/// the prefix cache's block charging share.
std::size_t kv_bytes_per_token(std::int64_t hidden, int bits);

}  // namespace lmo::runtime
