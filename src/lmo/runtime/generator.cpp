#include "lmo/runtime/generator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "lmo/kvshare/prefix_cache.hpp"
#include "lmo/kvshare/shared_kv_cache.hpp"
#include "lmo/runtime/window_kv.hpp"
#include "lmo/telemetry/trace.hpp"
#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"

namespace lmo::runtime {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

const char* to_string(KVFlavor flavor) {
  switch (flavor) {
    case KVFlavor::kDense:
      return "dense";
    case KVFlavor::kPaged:
      return "paged";
    case KVFlavor::kWindow:
      return "window";
  }
  return "unknown";
}

void SamplingConfig::validate() const {
  LMO_CHECK_GE(temperature, 0.0);
  LMO_CHECK_GE(top_k, 0);
  LMO_CHECK_GE(top_p, 0.0);
  LMO_CHECK_LE(top_p, 1.0);
}

std::int64_t sample_token(const tensor::Tensor& logits,
                          const SamplingConfig& config,
                          util::Xoshiro256& rng) {
  config.validate();
  LMO_CHECK_EQ(logits.shape().rank(), 1u);
  if (config.greedy()) return tensor::argmax(logits);

  auto p = logits.f32();
  const std::size_t vocab = p.size();

  // Candidate set: all tokens, or the top-k by logit.
  std::vector<std::size_t> candidates(vocab);
  for (std::size_t i = 0; i < vocab; ++i) candidates[i] = i;
  if (config.top_k > 0 && static_cast<std::size_t>(config.top_k) < vocab) {
    std::partial_sort(candidates.begin(),
                      candidates.begin() + config.top_k, candidates.end(),
                      [&](std::size_t a, std::size_t b) {
                        return p[a] > p[b];
                      });
    candidates.resize(static_cast<std::size_t>(config.top_k));
  }

  // Temperature softmax over the candidates (numerically stable).
  double mx = -1e30;
  for (std::size_t i : candidates) {
    mx = std::max(mx, static_cast<double>(p[i]));
  }
  std::vector<double> weights;
  weights.reserve(candidates.size());
  double total = 0.0;
  for (std::size_t i : candidates) {
    const double w = std::exp((p[i] - mx) / config.temperature);
    weights.push_back(w);
    total += w;
  }

  // Nucleus (top-p) truncation: keep the smallest probability-sorted
  // prefix whose mass reaches top_p.
  if (config.top_p > 0.0 && config.top_p < 1.0) {
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return weights[a] > weights[b];
    });
    double cumulative = 0.0;
    std::size_t keep = 0;
    while (keep < order.size()) {
      cumulative += weights[order[keep]];
      ++keep;
      if (cumulative >= config.top_p * total) break;
    }
    std::vector<std::size_t> kept_candidates;
    std::vector<double> kept_weights;
    kept_candidates.reserve(keep);
    kept_weights.reserve(keep);
    total = 0.0;
    for (std::size_t i = 0; i < keep; ++i) {
      kept_candidates.push_back(candidates[order[i]]);
      kept_weights.push_back(weights[order[i]]);
      total += weights[order[i]];
    }
    candidates = std::move(kept_candidates);
    weights = std::move(kept_weights);
  }

  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<std::int64_t>(candidates[i]);
  }
  return static_cast<std::int64_t>(candidates.back());
}

Generator::Generator(const RuntimeConfig& config)
    : config_(config), sampling_rng_(config.sampling.seed) {
  config_.spec.validate();
  config_.sampling.validate();
  device_pool_ =
      std::make_unique<MemoryPool>("device", config.device_capacity);
  host_pool_ = std::make_unique<MemoryPool>("host", config.host_capacity);
  manager_ = std::make_unique<OffloadManager>(
      *device_pool_, *host_pool_, config.weight_bits, config.quant_group);
  manager_->set_recovery(config.recovery);
  transformer_ = std::make_unique<Transformer>(
      config.spec, *manager_, config.device_layers, config.seed);
  if (config.prefetch_threads > 0) {
    prefetch_pool_ =
        std::make_unique<parallel::ThreadPool>(config.prefetch_threads);
  }
  if (config.compute_threads > 1) {
    compute_pool_ =
        std::make_unique<parallel::ThreadPool>(config.compute_threads);
    transformer_->set_compute_pool(compute_pool_.get());
  }
  // Canonicalize the legacy paged_kv bool and the flavor enum so the rest
  // of the runtime (and the checkpoint fingerprint) sees one field.
  if (config_.paged_kv) config_.kv_flavor = KVFlavor::kPaged;
  config_.paged_kv = config_.kv_flavor == KVFlavor::kPaged;
  if (config_.kv_flavor == KVFlavor::kPaged) {
    LMO_CHECK_MSG(config_.kv_bits == 16,
                  "paged KV pages store f32 rows; kv_bits must be 16");
    page_pool_ = std::make_unique<PagePool>(config_.spec.hidden,
                                            config_.page_tokens, *host_pool_);
  }
  if (config_.kv_flavor == KVFlavor::kWindow) {
    LMO_CHECK_MSG(config_.kv_bits == 16,
                  "window KV rings store f32 rows; kv_bits must be 16");
    LMO_CHECK_GT(config_.window_tokens, 0);
  }
  if (config_.prefix_share) {
    LMO_CHECK_MSG(config_.kv_flavor == KVFlavor::kDense,
                  "prefix sharing layers over the dense KV backend");
    LMO_CHECK_MSG(config_.kv_bits == 16,
                  "shared KV blocks store f32 rows; kv_bits must be 16");
    LMO_CHECK_GT(config_.kv_block_tokens, 0);
    kvshare::PrefixCacheConfig pc;
    pc.block_tokens = config_.kv_block_tokens;
    pc.hidden = config_.spec.hidden;
    pc.num_layers = config_.spec.num_layers;
    prefix_cache_ = std::make_unique<kvshare::PrefixCache>(
        pc, host_pool_.get(), &manager_->metrics());
  }
}

Generator::~Generator() = default;

SequenceCache Generator::make_sequence_cache() {
  switch (config_.kv_flavor) {
    case KVFlavor::kPaged: {
      SequenceCache paged;
      for (std::int64_t layer = 0; layer < config_.spec.num_layers;
           ++layer) {
        paged.push_back(std::make_unique<PagedKVCache>(*page_pool_));
      }
      return paged;
    }
    case KVFlavor::kWindow: {
      SequenceCache window;
      for (std::int64_t layer = 0; layer < config_.spec.num_layers;
           ++layer) {
        window.push_back(std::make_unique<WindowKVCache>(
            config_.spec.hidden, config_.window_tokens, *host_pool_));
      }
      return window;
    }
    case KVFlavor::kDense:
      break;
  }
  return transformer_->make_cache(config_.kv_bits, config_.quant_group,
                                  *host_pool_);
}

SequenceCache Generator::make_shared_sequence_cache(
    const std::vector<std::int64_t>& prompt, std::int64_t& matched_out) {
  auto lease = prefix_cache_->match(prompt);
  matched_out = lease == nullptr ? 0 : lease->matched_tokens();
  SequenceCache cache;
  cache.reserve(static_cast<std::size_t>(config_.spec.num_layers));
  for (std::int64_t layer = 0; layer < config_.spec.num_layers; ++layer) {
    if (lease != nullptr) {
      cache.push_back(std::make_unique<kvshare::SharedKVCache>(
          config_.spec.hidden, layer, lease, matched_out, *host_pool_));
    } else {
      cache.push_back(std::make_unique<kvshare::SharedKVCache>(
          config_.spec.hidden, *host_pool_));
    }
  }
  return cache;
}

std::shared_ptr<kvshare::PrefixLease> Generator::publish_prefix(
    const std::vector<std::int64_t>& prompt, const SequenceCache& cache) {
  const std::int64_t bt = config_.kv_block_tokens;
  const std::int64_t hidden = config_.spec.hidden;
  return prefix_cache_->insert(
      prompt, [&](std::int64_t token_offset, float* payload) {
        for (std::int64_t layer = 0; layer < config_.spec.num_layers;
             ++layer) {
          const auto* shared = dynamic_cast<const kvshare::SharedKVCache*>(
              cache[static_cast<std::size_t>(layer)].get());
          LMO_CHECK(shared != nullptr);
          for (std::int64_t slot = 0; slot < bt; ++slot) {
            float* k_dst = payload + ((layer * 2 + 0) * bt + slot) * hidden;
            float* v_dst = payload + ((layer * 2 + 1) * bt + slot) * hidden;
            shared->copy_row(true, token_offset + slot, k_dst);
            shared->copy_row(false, token_offset + slot, v_dst);
          }
        }
      });
}

void Generator::begin(const std::vector<std::vector<std::int64_t>>& prompts,
                      std::int64_t gen_len) {
  LMO_CHECK_MSG(session_ == nullptr, "a generation session is already active");
  LMO_CHECK(!prompts.empty());
  LMO_CHECK_GT(gen_len, 0);

  auto session = std::make_unique<Session>();
  session->prompts = prompts;
  session->gen_len = gen_len;
  session->tokens.resize(prompts.size());
  session->next.resize(prompts.size());

  // Per-sequence caches (charged to the host pool, where offloaded caches
  // live in the paper's design). With prefix sharing on, each prompt is
  // matched against the radix tree first and its caches come pre-seeded
  // with the shared chain — prefill then runs only over the suffix.
  auto& trace = telemetry::TraceRecorder::global();
  std::vector<std::int64_t> matched(prompts.size(), 0);
  session->caches.reserve(prompts.size());
  for (std::size_t s = 0; s < prompts.size(); ++s) {
    LMO_CHECK(!prompts[s].empty());
    if (prefix_cache_ != nullptr) {
      telemetry::ScopedSpan match_span(trace, "prefix_match", "kvshare");
      session->caches.push_back(
          make_shared_sequence_cache(prompts[s], matched[s]));
    } else {
      session->caches.push_back(make_sequence_cache());
    }
  }
  for (auto& c : session->caches) session->cache_ptrs.push_back(&c);

  // ---- prefill: all unmatched prompt tokens at once, layer-outer over
  // the batch.
  const auto start = Clock::now();
  {
    telemetry::ScopedSpan prefill_span(trace, "prefill", "generate");
    std::vector<tensor::Tensor> states;
    states.reserve(prompts.size());
    for (std::size_t s = 0; s < prompts.size(); ++s) {
      states.push_back(transformer_->embed(std::span<const std::int64_t>(
          prompts[s]).subspan(static_cast<std::size_t>(matched[s]))));
    }
    transformer_->forward(states, session->cache_ptrs, prefetch_pool_.get());
    telemetry::ScopedSpan out_span(trace, "store_activation", "decode");
    for (std::size_t s = 0; s < prompts.size(); ++s) {
      session->next[s] = sample_token(transformer_->logits(states[s]),
                                      config_.sampling, sampling_rng_);
      session->tokens[s].push_back(session->next[s]);
    }
  }
  if (prefix_cache_ != nullptr) {
    // Publish every prompt's full-block KV rows so later requests (and
    // later sequences in this batch via match-before-publish ordering:
    // matches happened above, so publication never perturbs this batch)
    // can skip their shared prefixes.
    telemetry::ScopedSpan insert_span(trace, "prefix_insert", "kvshare");
    for (std::size_t s = 0; s < prompts.size(); ++s) {
      auto lease = publish_prefix(prompts[s], session->caches[s]);
      if (lease != nullptr) session->leases.push_back(std::move(lease));
    }
  }
  session->prefill_seconds = seconds_since(start);
  session->produced = 1;
  session_ = std::move(session);
}

std::int64_t Generator::step_index() const {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  return session_->produced;
}

bool Generator::done() const {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  return session_->produced >= session_->gen_len;
}

void Generator::step() {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  LMO_CHECK_MSG(!done(), "session already produced gen_len tokens");
  Session& session = *session_;

  auto& trace = telemetry::TraceRecorder::global();
  const auto start = Clock::now();
  {
    telemetry::ScopedSpan step_span(trace, "decode_step", "generate");
    std::vector<tensor::Tensor> step_states;
    step_states.reserve(session.prompts.size());
    for (std::size_t s = 0; s < session.prompts.size(); ++s) {
      const std::int64_t token[] = {session.next[s]};
      step_states.push_back(transformer_->embed(token));
    }
    transformer_->forward(step_states, session.cache_ptrs,
                          prefetch_pool_.get());
    telemetry::ScopedSpan out_span(trace, "store_activation", "decode");
    for (std::size_t s = 0; s < session.prompts.size(); ++s) {
      session.next[s] = sample_token(transformer_->logits(step_states[s]),
                                     config_.sampling, sampling_rng_);
      session.tokens[s].push_back(session.next[s]);
    }
  }
  session.decode_seconds += seconds_since(start);
  ++session.produced;
}

GenerationResult Generator::finish() {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  LMO_CHECK_MSG(done(), "finish() requires a completed session");
  Session& session = *session_;

  GenerationResult result;
  result.tokens = std::move(session.tokens);
  result.prefill_seconds = session.prefill_seconds;
  result.decode_seconds = session.decode_seconds;
  const double total = result.prefill_seconds + result.decode_seconds;
  result.tokens_per_second = static_cast<double>(session.gen_len) *
                             static_cast<double>(session.prompts.size()) /
                             total;
  result.offload = manager_->stats();
  for (const auto& cache : session.caches) {
    for (const auto& layer_cache : cache) {
      if (const auto* flat = dynamic_cast<const KVCache*>(layer_cache.get())) {
        result.kv_quantize_seconds += flat->quantize_seconds();
        result.kv_dequantize_seconds += flat->dequantize_seconds();
        result.kv_stored_bytes += flat->stored_bytes();
      } else if (const auto* paged =
                     dynamic_cast<const PagedKVCache*>(layer_cache.get())) {
        result.kv_stored_bytes +=
            paged->block_table().size() * page_pool_->page_bytes();
      } else if (const auto* shared =
                     dynamic_cast<const kvshare::SharedKVCache*>(
                         layer_cache.get())) {
        // Shared-chain bytes are owned by the prefix cache, not this
        // session; only the private tail counts against the sequence.
        result.kv_stored_bytes += shared->stored_bytes();
      } else if (const auto* window = dynamic_cast<const WindowKVCache*>(
                     layer_cache.get())) {
        result.kv_stored_bytes += 2 *
                                  static_cast<std::size_t>(window->window() *
                                                           config_.spec.hidden) *
                                  sizeof(float);
      }
    }
  }
  result.device_peak_bytes = device_pool_->peak();
  result.host_peak_bytes = host_pool_->peak();
  session_.reset();
  return result;
}

GenerationResult Generator::generate(
    const std::vector<std::vector<std::int64_t>>& prompts,
    std::int64_t gen_len) {
  begin(prompts, gen_len);
  while (!done()) step();
  return finish();
}

}  // namespace lmo::runtime
