#include "lmo/runtime/generator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "lmo/kvshare/prefix_cache.hpp"
#include "lmo/kvshare/shared_kv_cache.hpp"
#include "lmo/model/memory.hpp"
#include "lmo/parallel/bundling.hpp"
#include "lmo/perfmodel/policy.hpp"
#include "lmo/runtime/window_kv.hpp"
#include "lmo/telemetry/trace.hpp"
#include "lmo/tensor/ops.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/status.hpp"
#include "lmo/util/validate.hpp"

namespace lmo::runtime {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void SamplingConfig::validate() const {
  LMO_CHECK_GE(temperature, 0.0);
  LMO_CHECK_GE(top_k, 0);
  LMO_CHECK_GE(top_p, 0.0);
  LMO_CHECK_LE(top_p, 1.0);
}

std::int64_t sample_token(const tensor::Tensor& logits,
                          const SamplingConfig& config,
                          util::Xoshiro256& rng) {
  config.validate();
  LMO_CHECK_EQ(logits.shape().rank(), 1u);
  if (config.greedy()) return tensor::argmax(logits);

  auto p = logits.f32();
  const std::size_t vocab = p.size();

  // Candidate set: all tokens, or the top-k by logit.
  std::vector<std::size_t> candidates(vocab);
  for (std::size_t i = 0; i < vocab; ++i) candidates[i] = i;
  if (config.top_k > 0 && static_cast<std::size_t>(config.top_k) < vocab) {
    std::partial_sort(candidates.begin(),
                      candidates.begin() + config.top_k, candidates.end(),
                      [&](std::size_t a, std::size_t b) {
                        return p[a] > p[b];
                      });
    candidates.resize(static_cast<std::size_t>(config.top_k));
  }

  // Temperature softmax over the candidates (numerically stable).
  double mx = -1e30;
  for (std::size_t i : candidates) {
    mx = std::max(mx, static_cast<double>(p[i]));
  }
  std::vector<double> weights;
  weights.reserve(candidates.size());
  double total = 0.0;
  for (std::size_t i : candidates) {
    const double w = std::exp((p[i] - mx) / config.temperature);
    weights.push_back(w);
    total += w;
  }

  // Nucleus (top-p) truncation: keep the smallest probability-sorted
  // prefix whose mass reaches top_p.
  if (config.top_p > 0.0 && config.top_p < 1.0) {
    std::vector<std::size_t> order(candidates.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return weights[a] > weights[b];
    });
    double cumulative = 0.0;
    std::size_t keep = 0;
    while (keep < order.size()) {
      cumulative += weights[order[keep]];
      ++keep;
      if (cumulative >= config.top_p * total) break;
    }
    std::vector<std::size_t> kept_candidates;
    std::vector<double> kept_weights;
    kept_candidates.reserve(keep);
    kept_weights.reserve(keep);
    total = 0.0;
    for (std::size_t i = 0; i < keep; ++i) {
      kept_candidates.push_back(candidates[order[i]]);
      kept_weights.push_back(weights[order[i]]);
      total += weights[order[i]];
    }
    candidates = std::move(kept_candidates);
    weights = std::move(kept_weights);
  }

  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<std::int64_t>(candidates[i]);
  }
  return static_cast<std::int64_t>(candidates.back());
}

void RuntimeConfig::validate() const {
  spec.validate();
  sampling.validate();
  recovery.validate();
  adaptive.validate();
  integrity.validate();
  // Note: callers passing the legacy paged_kv bool are validated after the
  // Generator constructor canonicalizes it into kv_flavor.
  util::Validate("RuntimeConfig", [this](util::Validator& v) {
    v.ge("device_layers", device_layers, 0)
        .le("device_layers", device_layers, spec.num_layers);
    v.ge("disk_layers", disk_layers, 0)
        .le("disk_layers", disk_layers, spec.num_layers);
    v.require("disk_layers", device_layers + disk_layers <= spec.num_layers,
              "device_layers + disk_layers must not exceed num_layers");
    if (disk_layers > 0) {
      v.require("disk_capacity", disk_capacity > 0,
                "disk layers need a spill store (set disk_capacity)");
    }
    v.gt("spill_block_bytes", spill_block_bytes, 0);
    v.require("weight_bits",
              weight_bits == 16 || weight_bits == 8 || weight_bits == 4,
              "must be 16, 8 or 4");
    v.require("kv_bits", kv_bits == 16 || kv_bits == 8 || kv_bits == 4,
              "must be 16, 8 or 4");
    v.gt("quant_group", quant_group, 0);
    v.gt("device_capacity", device_capacity, 0);
    v.gt("host_capacity", host_capacity, 0);
    v.gt("page_tokens", page_tokens, 0);
    v.gt("window_tokens", window_tokens, 0);
    v.gt("kv_block_tokens", kv_block_tokens, 0);
    v.ge("prefetch_threads", prefetch_threads, 0);
    v.ge("compute_threads", compute_threads, 0);
    if (kv_flavor == KVFlavor::kPaged) {
      v.require("kv_bits", kv_bits == 16,
                "paged KV pages store f32 rows; kv_bits must be 16");
    }
    if (kv_flavor == KVFlavor::kWindow) {
      v.require("kv_bits", kv_bits == 16,
                "window KV rings store f32 rows; kv_bits must be 16");
    }
    if (prefix_share) {
      v.require("kv_flavor", kv_flavor == KVFlavor::kDense,
                "prefix sharing layers over the dense KV backend");
      v.require("kv_bits", kv_bits == 16,
                "shared KV blocks store f32 rows; kv_bits must be 16");
    }
  });
}

void RuntimeConfig::apply_policy(const perfmodel::Policy& policy) {
  const double layers = static_cast<double>(spec.num_layers);
  device_layers = static_cast<std::int64_t>(policy.weights_on_gpu * layers);
  disk_layers = std::min<std::int64_t>(
      spec.num_layers - device_layers,
      static_cast<std::int64_t>(
          std::ceil(policy.weights_on_disk * layers - 1e-9)));
  weight_bits = policy.weight_bits;
}

Generator::Generator(const RuntimeConfig& config)
    : Generator(config, SpillStoreFactory{}) {}

Generator::Generator(const RuntimeConfig& config,
                     SpillStoreFactory spill_factory)
    : config_(config), sampling_rng_(config.sampling.seed) {
  // Canonicalize the legacy paged_kv bool and the flavor enum so the rest
  // of the runtime (and the checkpoint fingerprint) sees one field.
  if (config_.paged_kv) config_.kv_flavor = KVFlavor::kPaged;
  config_.paged_kv = config_.kv_flavor == KVFlavor::kPaged;
  config_.validate();
  device_pool_ =
      std::make_unique<MemoryPool>("device", config.device_capacity);
  host_pool_ = std::make_unique<MemoryPool>("host", config.host_capacity);
  manager_ = std::make_unique<OffloadManager>(
      *device_pool_, *host_pool_, config.weight_bits, config.quant_group);
  manager_->set_recovery(config.recovery);
  integrity_ = std::make_unique<integrity::ChecksumRegistry>(
      config_.integrity, &manager_->metrics());
  // Weights fingerprint at registration time, so the registry must be
  // wired before the transformer constructs (and registers) its tensors.
  manager_->set_integrity(integrity_.get());
  if (config_.disk_capacity > 0) {
    store::StoreConfig sc;
    sc.block_bytes = config_.spill_block_bytes;
    sc.capacity_bytes = config_.disk_capacity;
    if (spill_factory) {
      // The recovery supervisor builds the store: journaled backend,
      // replayed free list, recovered keyed entries. Metrics still land in
      // this generator's registry.
      spill_store_ = spill_factory(sc, manager_->metrics());
      LMO_CHECK_MSG(spill_store_ != nullptr,
                    "spill-store factory returned null");
      LMO_CHECK_EQ(spill_store_->config().block_bytes, sc.block_bytes);
    } else {
      std::unique_ptr<store::StorageBackend> backend;
      if (config_.spill_path.empty()) {
        backend = std::make_unique<store::MemoryBackend>(sc.block_bytes);
      } else {
        backend = std::make_unique<store::FileBackend>(config_.spill_path,
                                                       sc.block_bytes);
      }
      spill_store_ = std::make_unique<store::BlockStore>(
          std::move(backend), sc, &manager_->metrics());
    }
  }
  if (config.prefetch_threads > 0) {
    prefetch_pool_ =
        std::make_unique<parallel::ThreadPool>(config.prefetch_threads);
  }
  if (spill_store_ != nullptr) {
    // Attach before the transformer registers weights: kDisk registrations
    // and degradation-ladder spills need the store, and the staging
    // pipeline wants the prefetch pool (created above for that reason).
    manager_->attach_store(spill_store_.get(), prefetch_pool_.get());
  }
  transformer_ = std::make_unique<Transformer>(config.spec, *manager_,
                                               config.device_layers,
                                               config.seed, config.disk_layers);
  if (config.compute_threads > 1) {
    compute_pool_ =
        std::make_unique<parallel::ThreadPool>(config.compute_threads);
    transformer_->set_compute_pool(compute_pool_.get());
  }
  if (config_.kv_flavor == KVFlavor::kPaged) {
    page_pool_ = std::make_unique<PagePool>(config_.spec.hidden,
                                            config_.page_tokens, *host_pool_);
  }
  if (config_.prefix_share) {
    kvshare::PrefixCacheConfig pc;
    pc.block_tokens = config_.kv_block_tokens;
    pc.hidden = config_.spec.hidden;
    pc.num_layers = config_.spec.num_layers;
    prefix_cache_ = std::make_unique<kvshare::PrefixCache>(
        pc, host_pool_.get(), &manager_->metrics(), integrity_.get());
  }
  if (spill_store_ != nullptr) {
    // Host-pressure relief, registered after the prefix cache so the
    // cheaper citizen fires first: evicting unpinned shared KV (merely
    // recomputable) is preferred over demoting weight shards to disk
    // (every later fetch pays the disk read).
    host_relief_id_ = host_pool_->add_pressure_callback(
        [m = manager_.get()](overload::PressureLevel,
                             std::size_t bytes_needed) {
          return m->demote_host_to_disk(bytes_needed);
        });
  }
}

Generator::~Generator() {
  if (host_relief_id_ >= 0) {
    host_pool_->remove_pressure_callback(host_relief_id_);
  }
}

SequenceCache Generator::make_sequence_cache() {
  KvCacheSpec kv;
  kv.hidden = config_.spec.hidden;
  kv.num_layers = config_.spec.num_layers;
  kv.kv_bits = config_.kv_bits;
  kv.quant_group = config_.quant_group;
  kv.window_tokens = config_.window_tokens;
  kv.pool = host_pool_.get();
  kv.page_pool = page_pool_.get();
  SequenceCache cache = MakeKvCache(config_.kv_flavor, kv);
  if (config_.integrity.enabled()) {
    // Only the dense backend stores rows at rest (possibly quantized);
    // paged/window caches hold live f32 rings the integrity layer does not
    // model.
    for (std::size_t layer = 0; layer < cache.size(); ++layer) {
      if (auto* dense = dynamic_cast<KVCache*>(cache[layer].get())) {
        dense->set_integrity(integrity_.get(),
                             "kv.layer" + std::to_string(layer));
      }
    }
  }
  return cache;
}

SequenceCache Generator::make_shared_sequence_cache(
    const std::vector<std::int64_t>& prompt, std::int64_t& matched_out) {
  auto lease = prefix_cache_->match(prompt);
  matched_out = lease == nullptr ? 0 : lease->matched_tokens();
  SequenceCache cache;
  cache.reserve(static_cast<std::size_t>(config_.spec.num_layers));
  for (std::int64_t layer = 0; layer < config_.spec.num_layers; ++layer) {
    if (lease != nullptr) {
      cache.push_back(std::make_unique<kvshare::SharedKVCache>(
          config_.spec.hidden, layer, lease, matched_out, *host_pool_));
    } else {
      cache.push_back(std::make_unique<kvshare::SharedKVCache>(
          config_.spec.hidden, *host_pool_));
    }
  }
  return cache;
}

void Generator::build_session_caches(Session& session,
                                     std::vector<std::int64_t>& matched) {
  auto& trace = telemetry::TraceRecorder::global();
  session.cache_ptrs.clear();
  session.leases.clear();
  session.caches.clear();
  matched.assign(session.prompts.size(), 0);
  session.caches.reserve(session.prompts.size());
  for (std::size_t s = 0; s < session.prompts.size(); ++s) {
    LMO_CHECK(!session.prompts[s].empty());
    if (prefix_cache_ != nullptr) {
      telemetry::ScopedSpan match_span(trace, "prefix_match", "kvshare");
      session.caches.push_back(
          make_shared_sequence_cache(session.prompts[s], matched[s]));
    } else {
      session.caches.push_back(make_sequence_cache());
    }
  }
  for (auto& c : session.caches) session.cache_ptrs.push_back(&c);
}

void Generator::repair_session_caches() {
  LMO_CHECK(session_ != nullptr);
  Session& session = *session_;
  integrity_->note_repair(integrity::RepairKind::kRecompute);
  auto& trace = telemetry::TraceRecorder::global();
  telemetry::ScopedSpan span(trace, "repair.recompute", "integrity");

  // Drop every (possibly corrupt) cache and lease, then recompute the KV
  // state from the token history. The prefix re-match may now skip fewer
  // blocks than the original (quarantine detaches corrupt chains); the
  // replay covers whatever the match no longer does.
  std::vector<std::int64_t> matched;
  build_session_caches(session, matched);

  std::vector<tensor::Tensor> states;
  states.reserve(session.prompts.size());
  for (std::size_t s = 0; s < session.prompts.size(); ++s) {
    std::vector<std::int64_t> replay(
        session.prompts[s].begin() +
            static_cast<std::ptrdiff_t>(matched[s]),
        session.prompts[s].end());
    // All produced tokens except the pending `next` are already embedded
    // in a healthy cache; re-prefilling them is bit-identical to the
    // incremental decode that built them (same kernels, same quantizer).
    const std::vector<std::int64_t>& produced = session.tokens[s];
    if (!produced.empty()) {
      replay.insert(replay.end(), produced.begin(), produced.end() - 1);
    }
    states.push_back(transformer_->embed(replay));
  }
  transformer_->forward(states, session.cache_ptrs, prefetch_pool_.get());
  // The replay's logits are discarded: their tokens were already sampled,
  // and drawing again would advance the sampling RNG off the clean path.
}

std::shared_ptr<kvshare::PrefixLease> Generator::publish_prefix(
    const std::vector<std::int64_t>& prompt, const SequenceCache& cache) {
  const std::int64_t bt = config_.kv_block_tokens;
  const std::int64_t hidden = config_.spec.hidden;
  return prefix_cache_->insert(
      prompt, [&](std::int64_t token_offset, float* payload) {
        for (std::int64_t layer = 0; layer < config_.spec.num_layers;
             ++layer) {
          const auto* shared = dynamic_cast<const kvshare::SharedKVCache*>(
              cache[static_cast<std::size_t>(layer)].get());
          LMO_CHECK(shared != nullptr);
          for (std::int64_t slot = 0; slot < bt; ++slot) {
            float* k_dst = payload + ((layer * 2 + 0) * bt + slot) * hidden;
            float* v_dst = payload + ((layer * 2 + 1) * bt + slot) * hidden;
            shared->copy_row(true, token_offset + slot, k_dst);
            shared->copy_row(false, token_offset + slot, v_dst);
          }
        }
      });
}

void Generator::start_adaptive(std::size_t batch, std::int64_t prompt_len,
                               std::int64_t gen_len) {
  auto& trace = telemetry::TraceRecorder::global();
  if (!trace.enabled()) {
    trace.enable();
    adaptive_owns_trace_ = true;
  }
  trace_events_seen_ = trace.event_count();
  adaptive_h2d_seen_ = manager_->stats().bytes_host_to_device;
  adaptive_steps_ = 0;

  // Believed Algorithm-3 inputs at this model's scale, mirroring
  // core::LMOffload::compute_graph / io_volumes. The controller calibrates
  // the copy bandwidth and compute scaling from measurements, so these
  // only have to be plausible, not right.
  parallel::SearchInput input;
  model::AttentionGraphParams gp;
  gp.hidden = config_.spec.hidden;
  gp.seq_len = prompt_len + gen_len / 2;
  gp.batch = static_cast<std::int64_t>(batch);
  gp.num_batches = 1;
  gp.kv_bits = config_.kv_bits;
  input.compute_graph = model::build_attention_graph(gp);
  parallel::bundle_small_ops(input.compute_graph);

  const double host_layers = static_cast<double>(
      config_.spec.num_layers - config_.device_layers);
  input.io_bytes[parallel::kLoadWeight] =
      model::layer_weight_bytes(config_.spec, config_.weight_bits) *
      host_layers;
  // Disk-tier layers additionally cross disk→CPU before the H2D hop, so
  // the search reserves staging threads for the disk-load task.
  input.disk_bytes =
      model::layer_weight_bytes(config_.spec, config_.weight_bits) *
      static_cast<double>(config_.disk_layers);
  const double act_bytes = static_cast<double>(batch) *
                           static_cast<double>(config_.spec.hidden) *
                           sizeof(float);
  input.io_bytes[parallel::kStoreActivation] = act_bytes;
  input.io_bytes[parallel::kLoadActivation] = act_bytes;
  input.io_bytes[parallel::kStoreCache] =
      static_cast<double>(batch) *
      static_cast<double>(config_.spec.num_layers) * 2.0 *
      static_cast<double>(config_.spec.hidden) *
      (static_cast<double>(config_.kv_bits) / 8.0);

  input.platform = hw::Platform::rtx4090_desktop();
  const int cores = std::max(
      8, static_cast<int>(std::thread::hardware_concurrency()));
  input.platform.cpu.cores = cores;
  input.platform.cpu.hw_threads = 2 * cores;
  input.max_threads = cores;

  adaptive_ = std::make_unique<parallel::AdaptiveController>(
      std::move(input), config_.adaptive, &manager_->metrics(), &trace);
}

void Generator::fold_adaptive_window() {
  auto& trace = telemetry::TraceRecorder::global();
  const std::vector<telemetry::TraceEvent> events = trace.events();

  parallel::WindowSample sample;
  sample.steps = adaptive_steps_;
  // Pair B/E spans per (tid, name) from the cursor on; a per-key stack
  // handles nested same-name spans (layer loops re-enter "compute").
  std::map<std::pair<int, std::string>, std::vector<double>> open;
  const auto fold = [&sample](const std::string& name, double dur_us) {
    if (name == "compute") {
      sample.compute_seconds += dur_us * 1e-6;
      return;
    }
    for (std::size_t i = 0; i < parallel::kNumIoTasks; ++i) {
      if (name == parallel::kIoTaskNames[i]) {
        sample.io_seconds[i] += dur_us * 1e-6;
        return;
      }
    }
  };
  for (std::size_t e = trace_events_seen_; e < events.size(); ++e) {
    const telemetry::TraceEvent& ev = events[e];
    if (ev.phase == 'B') {
      open[{ev.tid, ev.name}].push_back(ev.ts_us);
    } else if (ev.phase == 'E') {
      auto it = open.find({ev.tid, ev.name});
      if (it == open.end() || it->second.empty()) continue;
      fold(ev.name, ev.ts_us - it->second.back());
      it->second.pop_back();
    } else if (ev.phase == 'X') {
      fold(ev.name, ev.dur_us);
    }
  }
  trace_events_seen_ = events.size();

  // Only the weight stream has measured bytes (the OffloadManager's H2D
  // counter); the other tasks keep zero bytes so they feed the measured
  // t_gen but not the bandwidth calibration.
  const double h2d = manager_->stats().bytes_host_to_device;
  sample.io_bytes[parallel::kLoadWeight] =
      std::max(0.0, h2d - adaptive_h2d_seen_);
  adaptive_h2d_seen_ = h2d;

  const parallel::ReplanDecision decision = adaptive_->observe(sample);
  adaptive_steps_ = 0;
  if (decision.action == parallel::ReplanAction::kHold) return;

  // Apply between steps only: no forward pass is in flight, so the
  // shrink-side drain inside resize() returns immediately and token
  // numerics are untouched (attention is bit-identical at any pool size).
  if (compute_pool_ != nullptr) {
    compute_pool_->resize(std::max(1, decision.plan.intra_op_compute));
  }
  if (prefetch_pool_ != nullptr) {
    prefetch_pool_->resize(
        std::max(1, decision.plan.io_threads[parallel::kLoadWeight]));
  }
}

void Generator::stop_adaptive() {
  adaptive_.reset();
  adaptive_steps_ = 0;
  if (adaptive_owns_trace_) {
    telemetry::TraceRecorder::global().disable();
    adaptive_owns_trace_ = false;
  }
}

void Generator::begin(const std::vector<std::vector<std::int64_t>>& prompts,
                      std::int64_t gen_len) {
  LMO_CHECK_MSG(session_ == nullptr, "a generation session is already active");
  LMO_CHECK(!prompts.empty());
  LMO_CHECK_GT(gen_len, 0);

  auto session = std::make_unique<Session>();
  session->prompts = prompts;
  session->gen_len = gen_len;
  session->tokens.resize(prompts.size());
  session->next.resize(prompts.size());

  // Per-sequence caches (charged to the host pool, where offloaded caches
  // live in the paper's design). With prefix sharing on, each prompt is
  // matched against the radix tree first and its caches come pre-seeded
  // with the shared chain — prefill then runs only over the suffix.
  auto& trace = telemetry::TraceRecorder::global();
  std::vector<std::int64_t> matched;
  build_session_caches(*session, matched);

  // ---- prefill: all unmatched prompt tokens at once, layer-outer over
  // the batch. A DataCorruption (weights refetch exhausted, KV row or
  // shared block failed verification) discards the partial caches and
  // re-runs prefill from scratch, up to the configured repair budget.
  // Sampling happens only on the successful attempt, so the RNG stream
  // matches a clean run.
  const auto start = Clock::now();
  for (int attempt = 0;; ++attempt) {
    try {
      if (attempt > 0) {
        integrity_->note_repair(integrity::RepairKind::kRecompute);
        telemetry::ScopedSpan repair_span(trace, "repair.recompute",
                                          "integrity");
        build_session_caches(*session, matched);
      }
      telemetry::ScopedSpan prefill_span(trace, "prefill", "generate");
      std::vector<tensor::Tensor> states;
      states.reserve(prompts.size());
      for (std::size_t s = 0; s < prompts.size(); ++s) {
        states.push_back(transformer_->embed(std::span<const std::int64_t>(
            prompts[s]).subspan(static_cast<std::size_t>(matched[s]))));
      }
      transformer_->forward(states, session->cache_ptrs,
                            prefetch_pool_.get());
      telemetry::ScopedSpan out_span(trace, "store_activation", "decode");
      for (std::size_t s = 0; s < prompts.size(); ++s) {
        session->next[s] = sample_token(transformer_->logits(states[s]),
                                        config_.sampling, sampling_rng_);
        session->tokens[s].push_back(session->next[s]);
      }
      break;
    } catch (const util::DataCorruption&) {
      if (!config_.integrity.enabled() ||
          attempt >= config_.integrity.max_repair_attempts) {
        throw;
      }
    }
  }
  if (prefix_cache_ != nullptr) {
    // Publish every prompt's full-block KV rows so later requests (and
    // later sequences in this batch via match-before-publish ordering:
    // matches happened above, so publication never perturbs this batch)
    // can skip their shared prefixes.
    telemetry::ScopedSpan insert_span(trace, "prefix_insert", "kvshare");
    for (std::size_t s = 0; s < prompts.size(); ++s) {
      auto lease = publish_prefix(prompts[s], session->caches[s]);
      if (lease != nullptr) session->leases.push_back(std::move(lease));
    }
  }
  session->prefill_seconds = seconds_since(start);
  session->produced = 1;
  session_ = std::move(session);
  if (config_.adaptive.enabled) {
    std::size_t prompt_len = 0;
    for (const auto& p : prompts) {
      prompt_len = std::max(prompt_len, p.size());
    }
    start_adaptive(prompts.size(), static_cast<std::int64_t>(prompt_len),
                   gen_len);
  }
}

std::int64_t Generator::step_index() const {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  return session_->produced;
}

bool Generator::done() const {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  return session_->produced >= session_->gen_len;
}

void Generator::step() {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  LMO_CHECK_MSG(!done(), "session already produced gen_len tokens");
  Session& session = *session_;

  auto& trace = telemetry::TraceRecorder::global();
  const auto start = Clock::now();
  // Decode one token, with the recompute rung of the repair ladder around
  // it: a DataCorruption rebuilds the session caches from token history
  // (no RNG advance) and retries the step, up to the repair budget.
  for (int attempt = 0;; ++attempt) {
    try {
      if (attempt > 0) repair_session_caches();
      telemetry::ScopedSpan step_span(trace, "decode_step", "generate");
      std::vector<tensor::Tensor> step_states;
      step_states.reserve(session.prompts.size());
      for (std::size_t s = 0; s < session.prompts.size(); ++s) {
        const std::int64_t token[] = {session.next[s]};
        step_states.push_back(transformer_->embed(token));
      }
      transformer_->forward(step_states, session.cache_ptrs,
                            prefetch_pool_.get());
      telemetry::ScopedSpan out_span(trace, "store_activation", "decode");
      for (std::size_t s = 0; s < session.prompts.size(); ++s) {
        session.next[s] = sample_token(transformer_->logits(step_states[s]),
                                       config_.sampling, sampling_rng_);
        session.tokens[s].push_back(session.next[s]);
      }
      break;
    } catch (const util::DataCorruption&) {
      if (!config_.integrity.enabled() ||
          attempt >= config_.integrity.max_repair_attempts) {
        throw;
      }
    }
  }
  session.decode_seconds += seconds_since(start);
  ++session.produced;
  if (adaptive_ != nullptr &&
      ++adaptive_steps_ >= config_.adaptive.window_steps) {
    fold_adaptive_window();
  }
}

GenerationResult Generator::finish() {
  LMO_CHECK_MSG(session_ != nullptr, "no active generation session");
  LMO_CHECK_MSG(done(), "finish() requires a completed session");
  Session& session = *session_;

  GenerationResult result;
  result.tokens = std::move(session.tokens);
  result.prefill_seconds = session.prefill_seconds;
  result.decode_seconds = session.decode_seconds;
  const double total = result.prefill_seconds + result.decode_seconds;
  result.tokens_per_second = static_cast<double>(session.gen_len) *
                             static_cast<double>(session.prompts.size()) /
                             total;
  result.offload = manager_->stats();
  for (const auto& cache : session.caches) {
    for (const auto& layer_cache : cache) {
      if (const auto* flat = dynamic_cast<const KVCache*>(layer_cache.get())) {
        result.kv_quantize_seconds += flat->quantize_seconds();
        result.kv_dequantize_seconds += flat->dequantize_seconds();
        result.kv_stored_bytes += flat->stored_bytes();
      } else if (const auto* paged =
                     dynamic_cast<const PagedKVCache*>(layer_cache.get())) {
        result.kv_stored_bytes +=
            paged->block_table().size() * page_pool_->page_bytes();
      } else if (const auto* shared =
                     dynamic_cast<const kvshare::SharedKVCache*>(
                         layer_cache.get())) {
        // Shared-chain bytes are owned by the prefix cache, not this
        // session; only the private tail counts against the sequence.
        result.kv_stored_bytes += shared->stored_bytes();
      } else if (const auto* window = dynamic_cast<const WindowKVCache*>(
                     layer_cache.get())) {
        result.kv_stored_bytes += 2 *
                                  static_cast<std::size_t>(window->window() *
                                                           config_.spec.hidden) *
                                  sizeof(float);
      }
    }
  }
  result.device_peak_bytes = device_pool_->peak();
  result.host_peak_bytes = host_pool_->peak();
  session_.reset();
  stop_adaptive();
  return result;
}

GenerationResult Generator::generate(
    const std::vector<std::vector<std::int64_t>>& prompts,
    std::int64_t gen_len) {
  begin(prompts, gen_len);
  while (!done()) step();
  return finish();
}

}  // namespace lmo::runtime
