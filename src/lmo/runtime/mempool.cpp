#include "lmo/runtime/mempool.hpp"

#include <algorithm>

#include "lmo/util/check.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"
#include "lmo/util/units.hpp"

namespace lmo::runtime {

MemoryPool::MemoryPool(std::string name, std::size_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {
  LMO_CHECK_GT(capacity_, 0u);
}

void MemoryPool::set_watermarks(const overload::WatermarkConfig& config) {
  config.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  watermarks_ = config;
  notified_ = overload::PressureLevel::kNone;
}

overload::PressureLevel MemoryPool::pressure() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!watermarks_) {
    return used_ >= capacity_ ? overload::PressureLevel::kCritical
                              : overload::PressureLevel::kNone;
  }
  return watermarks_->level(used_, capacity_);
}

int MemoryPool::add_pressure_callback(PressureCallback callback) {
  LMO_CHECK(callback != nullptr);
  std::lock_guard<std::mutex> lock(callbacks_mutex_);
  const int id = next_callback_id_++;
  callbacks_.emplace_back(id, std::move(callback));
  return id;
}

void MemoryPool::remove_pressure_callback(int id) {
  std::lock_guard<std::mutex> lock(callbacks_mutex_);
  callbacks_.erase(
      std::remove_if(callbacks_.begin(), callbacks_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      callbacks_.end());
}

std::size_t MemoryPool::notify_pressure(overload::PressureLevel level,
                                        std::size_t bytes_needed) {
  std::vector<PressureCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(callbacks_mutex_);
    callbacks.reserve(callbacks_.size());
    for (const auto& entry : callbacks_) callbacks.push_back(entry.second);
  }
  std::size_t freed = 0;
  for (const auto& callback : callbacks) {
    if (freed >= bytes_needed) break;
    freed += callback(level, bytes_needed - freed);
  }
  return freed;
}

void MemoryPool::charge(std::size_t bytes) {
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fail_alloc("pool." + name_ + ".charge")) {
    throw util::ResourceExhausted("pool '" + name_ +
                                  "' allocation denied by fault injection");
  }
  // A request larger than the whole pool can never be satisfied; skip the
  // pressure callbacks (no amount of eviction helps) and fail typed.
  const auto exhausted = [&](std::size_t used) -> util::ResourceExhausted {
    return util::ResourceExhausted(
        "pool '" + name_ + "' exhausted: " +
        util::format_bytes(static_cast<double>(used)) + " used + " +
        util::format_bytes(static_cast<double>(bytes)) + " requested > " +
        util::format_bytes(static_cast<double>(capacity_)) + " capacity");
  };
  if (bytes > capacity_) throw exhausted(used());

  // Up to one pressure-relief round trip before the exception-only cliff:
  // would-fail -> callbacks evict -> retry once.
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::size_t deficit = 0;
    std::size_t reclaim_target = 0;
    overload::PressureLevel crossed = overload::PressureLevel::kNone;
    std::size_t over_low = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Overflow-safe: `used_ + bytes > capacity_` can wrap for adversarial
      // `bytes`; `used_ <= capacity_` is an invariant so the subtraction is
      // exact.
      if (bytes <= capacity_ - used_) {
        used_ += bytes;
        if (used_ > peak_) peak_ = used_;
        if (watermarks_) {
          const auto level = watermarks_->level(used_, capacity_);
          if (level >= overload::PressureLevel::kHigh && level > notified_) {
            // Upward crossing: signal once per excursion above `low`.
            crossed = level;
            notified_ = level;
            const std::size_t low = watermarks_->low_bytes(capacity_);
            over_low = used_ > low ? used_ - low : 0;
          }
        }
      } else {
        deficit = bytes - (capacity_ - used_);
        const std::size_t low = watermarks_
                                    ? watermarks_->low_bytes(capacity_)
                                    : capacity_;
        reclaim_target = deficit + (used_ > low ? used_ - low : 0);
      }
    }
    if (deficit == 0) {
      if (crossed != overload::PressureLevel::kNone) {
        notify_pressure(crossed, over_low);
      }
      return;
    }
    if (attempt == 0 &&
        notify_pressure(overload::PressureLevel::kCritical,
                        reclaim_target) > 0) {
      continue;  // something was freed — retry the charge
    }
    break;
  }
  throw exhausted(used());
}

bool MemoryPool::try_charge(std::size_t bytes) {
  try {
    charge(bytes);
  } catch (const util::ResourceExhausted&) {
    return false;
  }
  return true;
}

void MemoryPool::release(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_LE(bytes, used_);
  used_ -= bytes;
  if (watermarks_ &&
      watermarks_->level(used_, capacity_) < overload::PressureLevel::kLow) {
    notified_ = overload::PressureLevel::kNone;  // re-arm crossing signals
  }
}

std::size_t MemoryPool::used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t MemoryPool::peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::size_t MemoryPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - used_;
}

PoolCharge::PoolCharge(MemoryPool& pool, std::size_t bytes)
    : pool_(&pool), bytes_(bytes) {
  pool.charge(bytes);
}

PoolCharge::~PoolCharge() { reset(); }

PoolCharge::PoolCharge(PoolCharge&& other) noexcept
    : pool_(other.pool_), bytes_(other.bytes_) {
  other.pool_ = nullptr;
  other.bytes_ = 0;
}

PoolCharge& PoolCharge::operator=(PoolCharge&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = other.pool_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void PoolCharge::reset() {
  if (pool_ != nullptr && bytes_ > 0) {
    pool_->release(bytes_);
  }
  pool_ = nullptr;
  bytes_ = 0;
}

}  // namespace lmo::runtime
