#include "lmo/runtime/mempool.hpp"

#include "lmo/util/check.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"
#include "lmo/util/units.hpp"

namespace lmo::runtime {

MemoryPool::MemoryPool(std::string name, std::size_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes) {
  LMO_CHECK_GT(capacity_, 0u);
}

void MemoryPool::charge(std::size_t bytes) {
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fail_alloc("pool." + name_ + ".charge")) {
    throw util::ResourceExhausted("pool '" + name_ +
                                  "' allocation denied by fault injection");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (used_ + bytes > capacity_) {
    throw util::ResourceExhausted(
        "pool '" + name_ + "' exhausted: " +
        util::format_bytes(static_cast<double>(used_)) + " used + " +
        util::format_bytes(static_cast<double>(bytes)) + " requested > " +
        util::format_bytes(static_cast<double>(capacity_)) + " capacity");
  }
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
}

bool MemoryPool::try_charge(std::size_t bytes) {
  try {
    charge(bytes);
  } catch (const util::ResourceExhausted&) {
    return false;
  }
  return true;
}

void MemoryPool::release(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_LE(bytes, used_);
  used_ -= bytes;
}

std::size_t MemoryPool::used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t MemoryPool::peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::size_t MemoryPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - used_;
}

PoolCharge::PoolCharge(MemoryPool& pool, std::size_t bytes)
    : pool_(&pool), bytes_(bytes) {
  pool.charge(bytes);
}

PoolCharge::~PoolCharge() { reset(); }

PoolCharge::PoolCharge(PoolCharge&& other) noexcept
    : pool_(other.pool_), bytes_(other.bytes_) {
  other.pool_ = nullptr;
  other.bytes_ = 0;
}

PoolCharge& PoolCharge::operator=(PoolCharge&& other) noexcept {
  if (this != &other) {
    reset();
    pool_ = other.pool_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void PoolCharge::reset() {
  if (pool_ != nullptr && bytes_ > 0) {
    pool_->release(bytes_);
  }
  pool_ = nullptr;
  bytes_ = 0;
}

}  // namespace lmo::runtime
