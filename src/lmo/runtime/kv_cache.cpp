#include "lmo/runtime/kv_cache.hpp"

#include <chrono>
#include <cstring>

#include "lmo/util/check.hpp"

namespace lmo::runtime {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

KVCache::KVCache(std::int64_t hidden, int bits, std::int64_t group_size,
                 MemoryPool& pool)
    : hidden_(hidden), bits_(bits), group_size_(group_size), pool_(&pool) {
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK(bits == 16 || bits == 8 || bits == 4);
  LMO_CHECK_GT(group_size, 0);
}

KVCache::~KVCache() {
  if (pool_ != nullptr && stored_bytes_ > 0) {
    pool_->release(stored_bytes_);
  }
}

KVCache::Row KVCache::make_row(const tensor::Tensor& row) {
  LMO_CHECK_EQ(row.shape().rank(), 1u);
  LMO_CHECK_EQ(row.shape()[0], hidden_);
  Row out;
  if (bits_ == 16) {
    out.plain = row.clone();
  } else {
    const auto start = std::chrono::steady_clock::now();
    out.quantized =
        tensor::quantize(row, tensor::QuantConfig{bits_, group_size_});
    quantize_seconds_ += seconds_since(start);
  }
  return out;
}

std::size_t KVCache::row_bytes(const Row& row) const {
  return row.quantized.defined() ? row.quantized.byte_size()
                                 : row.plain.byte_size();
}

void KVCache::append(const tensor::Tensor& k_row,
                     const tensor::Tensor& v_row) {
  Row k = make_row(k_row);
  Row v = make_row(v_row);
  const std::size_t bytes = row_bytes(k) + row_bytes(v);
  pool_->charge(bytes);
  stored_bytes_ += bytes;
  k_rows_.push_back(std::move(k));
  v_rows_.push_back(std::move(v));
  ++length_;
}

tensor::Tensor KVCache::materialize(const std::vector<Row>& rows) const {
  LMO_CHECK(!rows.empty());
  tensor::Tensor out = tensor::Tensor::zeros({length_, hidden_});
  auto dst = out.f32();
  for (std::int64_t i = 0; i < length_; ++i) {
    tensor::Tensor row;
    if (rows[static_cast<std::size_t>(i)].quantized.defined()) {
      const auto start = std::chrono::steady_clock::now();
      row = tensor::dequantize(rows[static_cast<std::size_t>(i)].quantized);
      dequantize_seconds_ += seconds_since(start);
    } else {
      row = rows[static_cast<std::size_t>(i)].plain;
    }
    std::memcpy(dst.data() + i * hidden_, row.f32().data(),
                static_cast<std::size_t>(hidden_) * sizeof(float));
  }
  return out;
}

void KVCache::truncate(std::int64_t new_length) {
  LMO_CHECK_GE(new_length, 0);
  LMO_CHECK_LE(new_length, length_);
  while (length_ > new_length) {
    const std::size_t bytes =
        row_bytes(k_rows_.back()) + row_bytes(v_rows_.back());
    k_rows_.pop_back();
    v_rows_.pop_back();
    pool_->release(bytes);
    stored_bytes_ -= bytes;
    --length_;
  }
}

tensor::Tensor KVCache::keys() const { return materialize(k_rows_); }

tensor::Tensor KVCache::values() const { return materialize(v_rows_); }

double KVCache::dequantize_seconds() const { return dequantize_seconds_; }

void KVCache::restore_rows(std::vector<Row> k, std::vector<Row> v) {
  LMO_CHECK_MSG(length_ == 0, "restore_rows requires an empty cache");
  LMO_CHECK_EQ(k.size(), v.size());
  std::size_t bytes = 0;
  for (const auto* rows : {&k, &v}) {
    for (const Row& row : *rows) {
      if (bits_ == 16) {
        LMO_CHECK_MSG(row.plain.defined() && !row.quantized.defined(),
                      "restored row compression does not match bits=16 cache");
        LMO_CHECK_EQ(row.plain.shape().rank(), 1u);
        LMO_CHECK_EQ(row.plain.shape()[0], hidden_);
      } else {
        LMO_CHECK_MSG(row.quantized.defined() && !row.plain.defined(),
                      "restored row compression does not match quantized cache");
        LMO_CHECK_EQ(row.quantized.bits(), bits_);
        LMO_CHECK_EQ(row.quantized.original_shape().numel(), hidden_);
      }
      bytes += row_bytes(row);
    }
  }
  pool_->charge(bytes);
  stored_bytes_ += bytes;
  length_ = static_cast<std::int64_t>(k.size());
  k_rows_ = std::move(k);
  v_rows_ = std::move(v);
}

std::unique_ptr<KVCacheBase> KVCache::clone() const {
  auto copy = std::make_unique<KVCache>(hidden_, bits_, group_size_, *pool_);
  // Rows hold shared-immutable payloads; copying the row vectors is a deep
  // logical copy. Charge the pool for the duplicate residency *before*
  // populating the copy: if the charge throws (pool pressure or fault
  // injection), the copy must not carry bytes its destructor would release
  // without ever having charged.
  pool_->charge(stored_bytes_);
  copy->k_rows_ = k_rows_;
  copy->v_rows_ = v_rows_;
  copy->length_ = length_;
  copy->stored_bytes_ = stored_bytes_;
  return copy;
}

}  // namespace lmo::runtime
