#include "lmo/runtime/kv_cache.hpp"

#include <chrono>
#include <cstring>
#include <span>

#include "lmo/util/check.hpp"
#include "lmo/util/checksum.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"

namespace lmo::runtime {
namespace {

// Bit-flip injection on KV rows as they are read back for attention.
constexpr const char* kKvFlipSite = "integrity.kv.flip";

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The stored payload bytes a row's fingerprint covers.
std::span<const std::byte> row_payload(const KVCache::Row& row) {
  if (row.quantized.defined()) {
    const std::vector<std::uint8_t>& payload = row.quantized.payload();
    return std::as_bytes(
        std::span<const std::uint8_t>(payload.data(), payload.size()));
  }
  return row.plain.raw();
}

/// A deep copy of `row` with bit `flip` of its payload inverted — the
/// "wire" copy a bit-rot fault would deliver. The stored row (whose payload
/// clones share) is never mutated.
KVCache::Row flip_row(const KVCache::Row& row, std::int64_t flip) {
  KVCache::Row out;
  const auto byte_index = static_cast<std::size_t>(flip / 8);
  const auto mask = static_cast<std::uint8_t>(1u << (flip % 8));
  if (row.quantized.defined()) {
    std::vector<std::uint8_t> payload = row.quantized.payload();
    payload[byte_index] ^= mask;
    out.quantized = tensor::QuantizedTensor::from_parts(
        row.quantized.original_shape(),
        tensor::QuantConfig{row.quantized.bits(), row.quantized.group_size()},
        row.quantized.padded_numel(), std::move(payload),
        row.quantized.group_min(), row.quantized.group_scale());
  } else {
    out.plain = row.plain.clone();
    out.plain.raw()[byte_index] ^= static_cast<std::byte>(mask);
  }
  return out;
}

}  // namespace

KVCache::KVCache(std::int64_t hidden, int bits, std::int64_t group_size,
                 MemoryPool& pool)
    : hidden_(hidden), bits_(bits), group_size_(group_size), pool_(&pool) {
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK(bits == 16 || bits == 8 || bits == 4);
  LMO_CHECK_GT(group_size, 0);
}

KVCache::~KVCache() {
  if (pool_ != nullptr && stored_bytes_ > 0) {
    pool_->release(stored_bytes_);
  }
}

KVCache::Row KVCache::make_row(const tensor::Tensor& row) {
  LMO_CHECK_EQ(row.shape().rank(), 1u);
  LMO_CHECK_EQ(row.shape()[0], hidden_);
  Row out;
  if (bits_ == 16) {
    out.plain = row.clone();
  } else {
    const auto start = std::chrono::steady_clock::now();
    out.quantized =
        tensor::quantize(row, tensor::QuantConfig{bits_, group_size_});
    quantize_seconds_ += seconds_since(start);
  }
  return out;
}

std::size_t KVCache::row_bytes(const Row& row) const {
  return row.quantized.defined() ? row.quantized.byte_size()
                                 : row.plain.byte_size();
}

void KVCache::append(const tensor::Tensor& k_row,
                     const tensor::Tensor& v_row) {
  Row k = make_row(k_row);
  Row v = make_row(v_row);
  const std::size_t bytes = row_bytes(k) + row_bytes(v);
  pool_->charge(bytes);
  stored_bytes_ += bytes;
  if (integrity_ != nullptr && integrity_->enabled()) {
    k_crcs_.push_back(util::crc32(row_payload(k)));
    v_crcs_.push_back(util::crc32(row_payload(v)));
  }
  k_rows_.push_back(std::move(k));
  v_rows_.push_back(std::move(v));
  ++length_;
}

void KVCache::set_integrity(integrity::ChecksumRegistry* registry,
                            std::string region) {
  LMO_CHECK_MSG(length_ == 0,
                "set_integrity must precede appends so every row gets a "
                "fingerprint");
  integrity_ = registry;
  region_ = std::move(region);
}

tensor::Tensor KVCache::materialize(
    const std::vector<Row>& rows,
    const std::vector<std::uint32_t>& crcs) const {
  LMO_CHECK(!rows.empty());
  auto& injector = util::FaultInjector::instance();
  const bool inject = injector.enabled();
  const bool check =
      integrity_ != nullptr && integrity_->enabled() && !crcs.empty();
  tensor::Tensor out = tensor::Tensor::zeros({length_, hidden_});
  auto dst = out.f32();
  for (std::int64_t i = 0; i < length_; ++i) {
    const Row& stored = rows[static_cast<std::size_t>(i)];
    const Row* src = &stored;
    Row wire;
    if (inject) {
      // The read-back crosses the same fragile path the write took; model
      // bit rot on a copy — clones share the stored payload, which must
      // stay pristine.
      // The flip domain is the fingerprinted payload span — byte_size()
      // also counts quantization metadata the wire copy does not carry.
      const std::int64_t flip = injector.corrupt_bit(
          kKvFlipSite,
          8 * static_cast<std::uint64_t>(row_payload(stored).size()));
      if (flip >= 0) {
        wire = flip_row(stored, flip);
        src = &wire;
      }
    }
    if (check &&
        integrity_->config().should_verify(static_cast<std::uint64_t>(i)) &&
        !integrity_->verify_value(row_payload(*src),
                                  crcs[static_cast<std::size_t>(i)])) {
      // The stored row itself may be rot (not just the wire copy), so
      // re-reading cannot repair it; the Generator recomputes the cache
      // from the token history.
      throw util::DataCorruption("KV row " + std::to_string(i) + " of " +
                                 (region_.empty() ? "<unnamed>" : region_) +
                                 " failed verification");
    }
    tensor::Tensor row;
    if (src->quantized.defined()) {
      const auto start = std::chrono::steady_clock::now();
      row = tensor::dequantize(src->quantized);
      dequantize_seconds_ += seconds_since(start);
    } else {
      row = src->plain;
    }
    std::memcpy(dst.data() + i * hidden_, row.f32().data(),
                static_cast<std::size_t>(hidden_) * sizeof(float));
  }
  return out;
}

void KVCache::truncate(std::int64_t new_length) {
  LMO_CHECK_GE(new_length, 0);
  LMO_CHECK_LE(new_length, length_);
  while (length_ > new_length) {
    const std::size_t bytes =
        row_bytes(k_rows_.back()) + row_bytes(v_rows_.back());
    k_rows_.pop_back();
    v_rows_.pop_back();
    if (!k_crcs_.empty()) {
      k_crcs_.pop_back();
      v_crcs_.pop_back();
    }
    pool_->release(bytes);
    stored_bytes_ -= bytes;
    --length_;
  }
}

tensor::Tensor KVCache::keys() const { return materialize(k_rows_, k_crcs_); }

tensor::Tensor KVCache::values() const {
  return materialize(v_rows_, v_crcs_);
}

double KVCache::dequantize_seconds() const { return dequantize_seconds_; }

void KVCache::restore_rows(std::vector<Row> k, std::vector<Row> v) {
  LMO_CHECK_MSG(length_ == 0, "restore_rows requires an empty cache");
  LMO_CHECK_EQ(k.size(), v.size());
  std::size_t bytes = 0;
  for (const auto* rows : {&k, &v}) {
    for (const Row& row : *rows) {
      if (bits_ == 16) {
        LMO_CHECK_MSG(row.plain.defined() && !row.quantized.defined(),
                      "restored row compression does not match bits=16 cache");
        LMO_CHECK_EQ(row.plain.shape().rank(), 1u);
        LMO_CHECK_EQ(row.plain.shape()[0], hidden_);
      } else {
        LMO_CHECK_MSG(row.quantized.defined() && !row.plain.defined(),
                      "restored row compression does not match quantized cache");
        LMO_CHECK_EQ(row.quantized.bits(), bits_);
        LMO_CHECK_EQ(row.quantized.original_shape().numel(), hidden_);
      }
      bytes += row_bytes(row);
    }
  }
  pool_->charge(bytes);
  stored_bytes_ += bytes;
  length_ = static_cast<std::int64_t>(k.size());
  k_rows_ = std::move(k);
  v_rows_ = std::move(v);
  if (integrity_ != nullptr && integrity_->enabled()) {
    // Restored rows arrive CRC-protected by the checkpoint envelope;
    // re-fingerprint them so at-rest verification resumes seamlessly.
    k_crcs_.clear();
    v_crcs_.clear();
    for (const Row& row : k_rows_) k_crcs_.push_back(util::crc32(row_payload(row)));
    for (const Row& row : v_rows_) v_crcs_.push_back(util::crc32(row_payload(row)));
  }
}

std::unique_ptr<KVCacheBase> KVCache::clone() const {
  auto copy = std::make_unique<KVCache>(hidden_, bits_, group_size_, *pool_);
  // Rows hold shared-immutable payloads; copying the row vectors is a deep
  // logical copy. Charge the pool for the duplicate residency *before*
  // populating the copy: if the charge throws (pool pressure or fault
  // injection), the copy must not carry bytes its destructor would release
  // without ever having charged.
  pool_->charge(stored_bytes_);
  copy->k_rows_ = k_rows_;
  copy->v_rows_ = v_rows_;
  copy->length_ = length_;
  copy->stored_bytes_ = stored_bytes_;
  copy->integrity_ = integrity_;
  copy->region_ = region_;
  copy->k_crcs_ = k_crcs_;
  copy->v_crcs_ = v_crcs_;
  return copy;
}

}  // namespace lmo::runtime
