#include "lmo/runtime/offload_manager.hpp"

#include <chrono>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "lmo/telemetry/trace.hpp"
#include "lmo/util/check.hpp"
#include "lmo/util/checksum.hpp"
#include "lmo/util/fault.hpp"
#include "lmo/util/status.hpp"

namespace lmo::runtime {
namespace {

constexpr const char* kFetchSite = "offload.fetch.transfer";
constexpr const char* kPrefetchSite = "offload.prefetch.transfer";
// Bit-flip injection on transferred weight payloads. A dedicated site so
// arming flips never perturbs the transient/latency schedules above.
constexpr const char* kWeightsFlipSite = "integrity.weights.flip";

std::string weights_region(const std::string& name) {
  return "weights." + name;
}

std::span<const std::byte> stored_payload_bytes(
    const tensor::Tensor& plain, const tensor::QuantizedTensor& quantized) {
  if (quantized.defined()) {
    const std::vector<std::uint8_t>& payload = quantized.payload();
    return std::as_bytes(
        std::span<const std::uint8_t>(payload.data(), payload.size()));
  }
  return plain.raw();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void sleep_seconds(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

}  // namespace

void RecoveryConfig::validate() const {
  LMO_CHECK_GE(max_transfer_attempts, 1);
  LMO_CHECK_GE(retry_backoff_seconds, 0.0);
}

OffloadManager::OffloadManager(MemoryPool& device_pool, MemoryPool& host_pool,
                               int quant_bits, std::int64_t group_size)
    : device_pool_(device_pool),
      host_pool_(host_pool),
      quant_bits_(quant_bits),
      group_size_(group_size) {
  LMO_CHECK(quant_bits == 16 || quant_bits == 8 || quant_bits == 4);
  // Pre-register every mapped metric so stats() always finds a full set,
  // even before the first fetch.
  for (const OffloadStatsField& field : kOffloadStatsFields) {
    if (field.u64 != nullptr) {
      metrics_.counter(field.metric);
    } else {
      metrics_.gauge(field.metric);
    }
  }
  fetches_ = &metrics_.counter("offload.fetch.total");
  device_hits_ = &metrics_.counter("offload.fetch.device_hits");
  staging_hits_ = &metrics_.counter("offload.fetch.staging_hits");
  host_transfers_ = &metrics_.counter("offload.transfer.total");
  bytes_host_to_device_ =
      &metrics_.gauge("offload.transfer.bytes_host_to_device");
  quantize_seconds_ = &metrics_.gauge("offload.quantize.seconds");
  dequantize_seconds_ = &metrics_.gauge("offload.dequantize.seconds");
  transfer_retries_ = &metrics_.counter("offload.transfer.retries");
  transfer_failures_ = &metrics_.counter("offload.transfer.failures");
  prefetch_failures_ = &metrics_.counter("offload.prefetch.failures");
  prefetch_timeouts_ = &metrics_.counter("offload.prefetch.timeouts");
  sync_fallbacks_ = &metrics_.counter("offload.fetch.sync_fallbacks");
  prefetch_discards_ = &metrics_.counter("offload.prefetch.discards");
  degradations_ = &metrics_.counter("offload.degrade.steps");
  staged_evictions_ = &metrics_.counter("offload.degrade.staged_evictions");
  disk_transfers_ = &metrics_.counter("offload.transfer.disk_total");
  bytes_disk_to_host_ = &metrics_.gauge("offload.transfer.bytes_disk_to_host");
  disk_spills_ = &metrics_.counter("offload.degrade.disk_spills");
}

void OffloadManager::attach_store(store::BlockStore* store,
                                  parallel::ThreadPool* pool) {
  LMO_CHECK_MSG(store != nullptr, "attach_store: null store");
  std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
  pipeline_ = pool == nullptr
                  ? nullptr
                  : std::make_unique<store::StagingPipeline>(
                        store, pool, /*depth=*/2, &metrics_);
}

OffloadStats OffloadManager::stats() const {
  const telemetry::MetricsSnapshot snap = metrics_.snapshot();
  OffloadStats out;
  for (const OffloadStatsField& field : kOffloadStatsFields) {
    if (field.u64 != nullptr) {
      out.*(field.u64) = snap.counter(field.metric);
    } else {
      out.*(field.f64) = snap.gauge(field.metric);
    }
  }
  return out;
}

void OffloadManager::set_recovery(const RecoveryConfig& recovery) {
  recovery.validate();
  std::lock_guard<std::mutex> lock(mutex_);
  recovery_ = recovery;
}

void OffloadManager::set_integrity(integrity::ChecksumRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_MSG(entries_.empty(),
                "set_integrity must precede weight registration so every "
                "host shard gets a fingerprint");
  integrity_ = registry;
}

std::size_t OffloadManager::staged_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staged_.size();
}

std::size_t OffloadManager::quiesce() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t waited = in_flight_.size();
  staged_cv_.wait(lock, [&] { return in_flight_.empty(); });
  return waited;
}

std::size_t OffloadManager::evict_staged_locked() {
  const std::size_t n = staged_.size();
  staged_.clear();  // StagedEntry charges release their device-pool bytes
  return n;
}

void OffloadManager::insert_entry(const std::string& name, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry.last_use = use_clock_++;
  const bool inserted = entries_.emplace(name, std::move(entry)).second;
  LMO_CHECK_MSG(inserted, "duplicate tensor name: " + name);
}

void OffloadManager::spill_value_to_disk(const std::string& name,
                                         Entry& entry,
                                         const tensor::Tensor& value) {
  LMO_CHECK_MSG(store_ != nullptr,
                "disk tier for \"" + name + "\" requires attach_store()");
  DiskMeta meta;
  std::span<const std::byte> payload;
  tensor::Tensor f16;
  tensor::QuantizedTensor quantized;
  if (quant_bits_ == 16) {
    f16 = value.cast(tensor::DType::kF16);
    meta.is_quantized = false;
    meta.shape = value.shape();
    payload = f16.raw();
  } else {
    telemetry::ScopedSpan span(telemetry::TraceRecorder::global(),
                               "quantize", "offload");
    const auto start = std::chrono::steady_clock::now();
    quantized =
        tensor::quantize(value, tensor::QuantConfig{quant_bits_, group_size_});
    quantize_seconds_->add(seconds_since(start));
    meta.is_quantized = true;
    meta.shape = quantized.original_shape();
    meta.bits = quantized.bits();
    meta.group_size = quantized.group_size();
    meta.padded_numel = quantized.padded_numel();
    meta.group_min = quantized.group_min();
    meta.group_scale = quantized.group_scale();
    const std::vector<std::uint8_t>& bytes = quantized.payload();
    payload = std::as_bytes(
        std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  }
  // Crash recovery: when a journaled store survived a kill with this exact
  // payload already committed under our key, adopt the surviving blocks
  // instead of rewriting them — the spill becomes free and the journal
  // stays compact. (Deterministic re-registration makes hits the common
  // case: the recovered process quantizes identical bytes.)
  const std::uint32_t payload_crc = util::crc32(payload);
  if (auto adopted = store_->adopt(name, payload_crc, payload.size())) {
    meta.handle = *adopted;
    metrics_.counter("recover.adopted.payloads").add();
  } else {
    meta.handle = store_->put(payload, name);
  }
  // Fingerprint the *stored* payload: the store returns these exact bytes,
  // so the normal host→device arrival verification applies unchanged.
  if (integrity_ != nullptr && integrity_->enabled()) {
    integrity_->record(weights_region(name), payload_crc);
  }
  entry.plain = tensor::Tensor();
  entry.quantized = tensor::QuantizedTensor();
  entry.charge = PoolCharge();
  entry.disk = std::move(meta);
  entry.tier = Tier::kDisk;
}

void OffloadManager::register_tensor(const std::string& name,
                                     tensor::Tensor value, Tier tier) {
  LMO_CHECK(value.defined());
  LMO_CHECK(value.dtype() == tensor::DType::kF32);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LMO_CHECK_MSG(entries_.count(name) == 0,
                  "duplicate tensor name: " + name);
  }
  // Pool charges run *without* the manager lock: charging may fire the
  // pool's pressure callbacks, and those may re-enter the manager (the
  // Generator registers demote_host_to_disk as host-pool relief).

  Entry entry;
  entry.tier = tier;
  if (tier == Tier::kDevice) {
    entry.plain = value;
    try {
      entry.charge = PoolCharge(device_pool_, entry.plain.byte_size());
      insert_entry(name, std::move(entry));
      return;
    } catch (const util::ResourceExhausted&) {
      if (!recovery_.allow_degradation) throw;
      // Ladder rung 1: reclaim device-side staging buffers and retry.
      std::lock_guard<std::mutex> lock(mutex_);
      staged_evictions_->add(evict_staged_locked());
    }
    try {
      entry.charge = PoolCharge(device_pool_, entry.plain.byte_size());
      insert_entry(name, std::move(entry));
      return;
    } catch (const util::ResourceExhausted&) {
      // Ladder rung 2: demote to the host tier (streamed on fetch).
      degradations_->add();
      entry.plain = tensor::Tensor();
      entry.tier = Tier::kHost;
    }
  }

  if (entry.tier == Tier::kDisk) {
    spill_value_to_disk(name, entry, value);
    insert_entry(name, std::move(entry));
    return;
  }

  // Host tier (possibly after demotion): fp16 → 8-bit → 4-bit ladder, then
  // spill to the disk tier when a store is attached.
  int bits = quant_bits_;
  for (;;) {
    try {
      if (bits == 16) {
        entry.plain = value.cast(tensor::DType::kF16);
        entry.charge = PoolCharge(host_pool_, entry.plain.byte_size());
      } else {
        telemetry::ScopedSpan span(telemetry::TraceRecorder::global(),
                                   "quantize", "offload");
        const auto start = std::chrono::steady_clock::now();
        entry.quantized =
            tensor::quantize(value, tensor::QuantConfig{bits, group_size_});
        quantize_seconds_->add(seconds_since(start));
        entry.plain = tensor::Tensor();
        entry.charge = PoolCharge(host_pool_, entry.quantized.byte_size());
      }
      break;
    } catch (const util::ResourceExhausted&) {
      const int next = bits == 16 ? 8 : bits == 8 ? 4 : 0;
      if (recovery_.allow_degradation && next != 0) {
        degradations_->add();
        bits = next;
        continue;
      }
      if (recovery_.allow_degradation && store_ != nullptr) {
        // Final rung: the host pool cannot hold this shard at any
        // precision — spill it to the disk tier instead of throwing.
        degradations_->add();
        disk_spills_->add();
        entry.quantized = tensor::QuantizedTensor();
        spill_value_to_disk(name, entry, value);
        insert_entry(name, std::move(entry));
        return;
      }
      throw;
    }
  }
  // Fingerprint the stored payload at offload time; fetches re-check it
  // per the integrity policy. Device-tier entries (early returns above)
  // never cross the bus, so only host shards are recorded.
  if (integrity_ != nullptr && integrity_->enabled()) {
    integrity_->record(weights_region(name),
                       util::crc32(stored_payload_bytes(entry.plain,
                                                        entry.quantized)));
  }
  insert_entry(name, std::move(entry));
}

bool OffloadManager::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

Tier OffloadManager::tier_of(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
  return it->second.tier;
}

std::size_t OffloadManager::stored_bytes(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
  return payload_bytes(it->second);
}

std::size_t OffloadManager::payload_bytes(const Entry& entry) const {
  if (entry.disk.has_value()) {
    return static_cast<std::size_t>(entry.disk->handle.bytes);
  }
  return entry.quantized.defined() ? entry.quantized.byte_size()
                                   : entry.plain.byte_size();
}

tensor::Tensor OffloadManager::materialize(const Entry& entry) {
  // Host → device transfer of the stored payload. Entries are immutable
  // after registration, so this runs without the manager lock; stats are
  // updated by the caller under the lock.
  if (entry.quantized.defined()) {
    return tensor::dequantize(entry.quantized);
  }
  return entry.plain.cast(tensor::DType::kF32);
}

tensor::Tensor OffloadManager::transfer_with_retries(const Entry& entry,
                                                     const std::string& name,
                                                     const char* site) {
  // The runtime analogue of Algorithm 1's load_weight task; the span makes
  // prefetch/compute overlap visible in chrome://tracing.
  telemetry::ScopedSpan span(telemetry::TraceRecorder::global(), "load_weight",
                             site);
  auto& injector = util::FaultInjector::instance();
  double backoff = recovery_.retry_backoff_seconds;
  std::int64_t repairs = 0;
  for (int attempt = 1;; ++attempt) {
    if (injector.enabled()) {
      sleep_seconds(injector.injected_delay(site));  // bandwidth spike
      if (injector.should_fail(site)) {
        if (attempt >= recovery_.max_transfer_attempts) {
          transfer_failures_->add();
          throw util::TransferError(
              std::string("transient transfer failure at ") + site +
              ", retry budget exhausted after " + std::to_string(attempt) +
              " attempts");
        }
        transfer_retries_->add();
        {
          telemetry::ScopedSpan retry_span(telemetry::TraceRecorder::global(),
                                           "retry_backoff", site);
          sleep_seconds(backoff);
        }
        backoff *= 2.0;
        continue;
      }
    }
    // The payload has "arrived". Under chaos the wire may silently flip a
    // bit; under an integrity policy the arrival is fingerprint-checked.
    // Both off (the common case) falls through to the seed's exact path.
    // The flip domain is the fingerprinted payload span — payload_bytes()
    // also counts quantization metadata the wire copy does not carry.
    const std::int64_t flip =
        injector.enabled()
            ? injector.corrupt_bit(
                  kWeightsFlipSite,
                  8 * static_cast<std::uint64_t>(
                          stored_payload_bytes(entry.plain, entry.quantized)
                              .size()))
            : -1;
    const bool check = integrity_ != nullptr && integrity_->enabled() &&
                       integrity_->should_verify(weights_region(name));
    if (check) {
      // Verify the bytes as transferred (flipped copy when a flip fired,
      // the pristine stored payload otherwise).
      bool intact;
      if (flip >= 0) {
        // Realize the corrupted wire copy only on this rare path.
        std::vector<std::uint8_t> wire;
        if (entry.quantized.defined()) {
          wire = entry.quantized.payload();
        } else {
          const auto raw = entry.plain.raw();
          wire.resize(raw.size());
          std::memcpy(wire.data(), raw.data(), raw.size());
        }
        wire[static_cast<std::size_t>(flip / 8)] ^=
            static_cast<std::uint8_t>(1u << (flip % 8));
        intact = integrity_->verify(
            weights_region(name),
            std::as_bytes(std::span<const std::uint8_t>(wire.data(),
                                                        wire.size())));
      } else {
        intact = integrity_->verify(
            weights_region(name),
            stored_payload_bytes(entry.plain, entry.quantized));
      }
      if (!intact) {
        // Weights rung of the repair ladder: the stored entry is the
        // pristine source, so a re-fetch (another trip around the loop)
        // delivers clean bytes unless the injector corrupts again.
        if (repairs++ >= integrity_->config().max_repair_attempts) {
          integrity_->note_unrepairable();
          throw util::DataCorruption(
              "weight shard \"" + name + "\" failed verification after " +
              std::to_string(repairs) + " re-fetch attempts at " + site);
        }
        integrity_->note_repair(integrity::RepairKind::kRefetch);
        telemetry::ScopedSpan repair_span(telemetry::TraceRecorder::global(),
                                          "repair.refetch", "integrity");
        continue;
      }
    } else if (flip >= 0) {
      // Unverified flip: the corruption must propagate silently, exactly
      // like real bit rot under verify=off (or an unsampled load).
      if (entry.quantized.defined()) {
        std::vector<std::uint8_t> wire = entry.quantized.payload();
        wire[static_cast<std::size_t>(flip / 8)] ^=
            static_cast<std::uint8_t>(1u << (flip % 8));
        tensor::QuantizedTensor corrupted = tensor::QuantizedTensor::from_parts(
            entry.quantized.original_shape(),
            tensor::QuantConfig{entry.quantized.bits(),
                                entry.quantized.group_size()},
            entry.quantized.padded_numel(), std::move(wire),
            entry.quantized.group_min(), entry.quantized.group_scale());
        const auto start = std::chrono::steady_clock::now();
        telemetry::ScopedSpan dq_span(telemetry::TraceRecorder::global(),
                                      "dequantize", site);
        tensor::Tensor value = tensor::dequantize(corrupted);
        dequantize_seconds_->add(seconds_since(start));
        return value;
      }
      tensor::Tensor wire = entry.plain.clone();
      const auto raw = wire.raw();
      raw[static_cast<std::size_t>(flip / 8)] ^=
          static_cast<std::byte>(1u << (flip % 8));
      return wire.cast(tensor::DType::kF32);
    }
    const auto start = std::chrono::steady_clock::now();
    tensor::Tensor value;
    if (entry.quantized.defined()) {
      telemetry::ScopedSpan dq_span(telemetry::TraceRecorder::global(),
                                    "dequantize", site);
      value = materialize(entry);
      dequantize_seconds_->add(seconds_since(start));
    } else {
      value = materialize(entry);
    }
    return value;
  }
}

tensor::Tensor OffloadManager::fetch_from_disk(const std::string& name,
                                               const DiskMeta& meta,
                                               const char* site) {
  std::vector<std::byte> bytes;
  {
    // The disk leg of the staging pipeline, the runtime analogue of the
    // estimator's load_weight_disk task.
    telemetry::ScopedSpan span(telemetry::TraceRecorder::global(),
                               "load_weight_disk", site);
    bytes = pipeline_ != nullptr ? pipeline_->fetch(name, meta.handle)
                                 : store_->get(meta.handle);
  }
  disk_transfers_->add();
  bytes_disk_to_host_->add(static_cast<double>(bytes.size()));
  // Rebuild the stored representation bit-exactly, then ride the normal
  // verified host→device transfer: injected transients, bit flips and the
  // integrity repair ladder behave exactly as for a host-tier shard.
  Entry temp;
  temp.tier = Tier::kHost;
  if (meta.is_quantized) {
    std::vector<std::uint8_t> payload(bytes.size());
    std::memcpy(payload.data(), bytes.data(), bytes.size());
    temp.quantized = tensor::QuantizedTensor::from_parts(
        meta.shape, tensor::QuantConfig{meta.bits, meta.group_size},
        meta.padded_numel, std::move(payload), meta.group_min,
        meta.group_scale);
  } else {
    tensor::Tensor f16(meta.shape, tensor::DType::kF16);
    LMO_CHECK_EQ(f16.raw().size(), bytes.size());
    std::memcpy(f16.raw().data(), bytes.data(), bytes.size());
    temp.plain = std::move(f16);
  }
  return transfer_with_retries(temp, name, site);
}

std::size_t OffloadManager::demote_host_to_disk(std::size_t bytes_needed) {
  if (store_ == nullptr || bytes_needed == 0) return 0;
  std::size_t freed = 0;
  while (freed < bytes_needed) {
    // Pick the coldest host-tier shard nobody is currently reading.
    std::string victim;
    Entry* entry = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::uint64_t coldest = UINT64_MAX;
      for (auto& [name, e] : entries_) {
        if (e.tier != Tier::kHost) continue;
        if (busy_.count(name) != 0 || in_flight_.count(name) != 0) continue;
        if (e.last_use < coldest) {
          coldest = e.last_use;
          victim = name;
          entry = &e;
        }
      }
      if (entry == nullptr) break;  // nothing demotable left
      ++busy_[victim];  // pin: other demoters skip it while we write
    }
    // Write the stored representation to disk as-is (no requantization:
    // the payload — and its integrity fingerprint — stay bit-identical).
    // Concurrent fetches of the victim may still read it; they see the
    // host tier until the flip below, which is fine — reads are const.
    store::BlockHandle handle;
    bool stored = false;
    try {
      handle = store_->put(
          stored_payload_bytes(entry->plain, entry->quantized));
      stored = true;
    } catch (const util::ResourceExhausted&) {
      // Store at capacity: demotion cannot help any further.
    } catch (const util::StorageError&) {
      // Unwritable block after retries: keep the shard host-resident.
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const bool contended = busy_[victim] > 1;
    if (--busy_[victim] == 0) busy_.erase(victim);
    if (!stored) break;
    if (contended) {
      // A fetch/prefetch began reading the victim mid-write; its Entry
      // must not change under it. Undo and try another candidate.
      store_->release(handle);
      continue;
    }
    DiskMeta meta;
    if (entry->quantized.defined()) {
      meta.is_quantized = true;
      meta.shape = entry->quantized.original_shape();
      meta.bits = entry->quantized.bits();
      meta.group_size = entry->quantized.group_size();
      meta.padded_numel = entry->quantized.padded_numel();
      meta.group_min = entry->quantized.group_min();
      meta.group_scale = entry->quantized.group_scale();
    } else {
      meta.is_quantized = false;
      meta.shape = entry->plain.shape();
    }
    meta.handle = std::move(handle);
    const std::size_t released = entry->charge.bytes();
    entry->plain = tensor::Tensor();
    entry->quantized = tensor::QuantizedTensor();
    entry->disk = std::move(meta);
    entry->charge = PoolCharge();  // releases the host-pool bytes
    entry->tier = Tier::kDisk;
    freed += released;
    disk_spills_->add();
    degradations_->add();
  }
  return freed;
}

tensor::Tensor OffloadManager::fetch(const std::string& name) {
  const Entry* entry = nullptr;
  std::optional<DiskMeta> disk;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
    fetches_->add();
    it->second.last_use = use_clock_++;
    entry = &it->second;
    if (entry->tier == Tier::kDevice) {
      device_hits_->add();
      return entry->plain;  // already f32, shared storage
    }
    // An in-flight prefetch of this tensor will stage it shortly; waiting
    // is cheaper than a duplicate transfer — but only up to the watchdog:
    // a hung prefetch must not stall decode forever.
    bool fallback = false;
    if (in_flight_.count(name) != 0) {
      const auto ready = [&] { return in_flight_.count(name) == 0; };
      if (recovery_.prefetch_wait_seconds > 0.0) {
        if (!staged_cv_.wait_for(
                lock,
                std::chrono::duration<double>(recovery_.prefetch_wait_seconds),
                ready)) {
          prefetch_timeouts_->add();
          abandoned_.insert(name);  // late result will be discarded
          fallback = true;
        }
      } else {
        staged_cv_.wait(lock, ready);
      }
    }
    auto staged = staged_.find(name);
    if (staged != staged_.end()) {
      tensor::Tensor value = std::move(staged->second.value);
      staged_.erase(staged);  // releases the device-side staging charge
      staging_hits_->add();
      return value;
    }
    if (failed_.erase(name) != 0) fallback = true;
    if (fallback) sync_fallbacks_->add();
    // Decide the transfer path under the lock: the tier may have changed
    // (host→disk demotion) while we waited on the condition variable.
    if (it->second.tier == Tier::kDisk) {
      disk = *it->second.disk;  // copy: the handle/meta stay stable
    } else {
      ++busy_[name];  // pin the entry against demotion while we read it
    }
  }
  if (disk.has_value()) {
    tensor::Tensor value = fetch_from_disk(name, *disk, kFetchSite);
    bytes_host_to_device_->add(static_cast<double>(disk->handle.bytes));
    host_transfers_->add();
    return value;
  }
  // Synchronous transfer (cold fetch, or recovery after a failed / hung
  // prefetch). Bytes are charged only once the transfer succeeds.
  tensor::Tensor value;
  try {
    value = transfer_with_retries(*entry, name, kFetchSite);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--busy_[name] == 0) busy_.erase(name);
    throw;
  }
  const auto moved = static_cast<double>(payload_bytes(*entry));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (--busy_[name] == 0) busy_.erase(name);
  }
  bytes_host_to_device_->add(moved);
  host_transfers_->add();
  return value;
}

std::future<void> OffloadManager::prefetch(const std::string& name,
                                           parallel::ThreadPool& pool) {
  auto promise = std::make_shared<std::promise<void>>();
  auto future = promise->get_future();
  // Claim the in-flight slot at submit time so a concurrent fetch() of the
  // same name waits for this load instead of duplicating the transfer.
  const Entry* entry = nullptr;
  std::optional<DiskMeta> disk;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
    entry = &it->second;
    if (entry->tier == Tier::kDevice || staged_.count(name) != 0 ||
        in_flight_.count(name) != 0) {
      promise->set_value();
      return future;
    }
    it->second.last_use = use_clock_++;
    if (it->second.tier == Tier::kDisk) disk = *it->second.disk;
    in_flight_.insert(name);
    ++busy_[name];  // pin against demotion for the task's lifetime
  }
  // Kick the disk→host read ahead of the H2D continuation: the store read
  // runs on the pipeline while the pool thread is still busy, which is the
  // double-buffering that hides the slow link.
  if (disk.has_value() && pipeline_ != nullptr) {
    pipeline_->prefetch(name, disk->handle);
  }
  const auto unpin_locked = [this](const std::string& n) {
    auto b = busy_.find(n);
    if (b != busy_.end() && --b->second == 0) busy_.erase(b);
  };
  pool.submit([this, name, entry, disk, promise, unpin_locked] {
    try {
      tensor::Tensor value =
          disk.has_value()
              ? fetch_from_disk(name, *disk, kPrefetchSite)
              : transfer_with_retries(*entry, name, kPrefetchSite);
      const auto moved = static_cast<double>(
          disk.has_value() ? disk->handle.bytes : payload_bytes(*entry));
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // The payload moved over the bus whether or not anyone still wants
        // it; account the traffic at transfer success, exactly once.
        bytes_host_to_device_->add(moved);
        host_transfers_->add();
        if (abandoned_.erase(name) != 0) {
          // A fetch timed out waiting for us and already recovered
          // synchronously; drop the late result.
          prefetch_discards_->add();
        } else {
          StagedEntry staged;
          staged.value = std::move(value);
          const std::size_t bytes = staged.value.byte_size();
          bool charged = false;
          try {
            staged.charge = PoolCharge(device_pool_, bytes);
            charged = true;
          } catch (const util::ResourceExhausted&) {
            // Staging buffers are reclaimable: evict and retry once.
            staged_evictions_->add(evict_staged_locked());
            try {
              staged.charge = PoolCharge(device_pool_, bytes);
              charged = true;
            } catch (const util::ResourceExhausted&) {
            }
          }
          if (charged) {
            failed_.erase(name);
            staged_.emplace(name, std::move(staged));
          } else {
            prefetch_failures_->add();
            failed_.insert(name);  // next fetch falls back synchronously
          }
        }
        in_flight_.erase(name);
        unpin_locked(name);
      }
      staged_cv_.notify_all();
      promise->set_value();
    } catch (const util::DataCorruption&) {
      // Unrepairable arrival on the *prefetch* path still has a recovery
      // rung: the next fetch() transfers synchronously with its own repair
      // budget. Only a sync fetch's corruption propagates to the caller.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (abandoned_.erase(name) == 0) failed_.insert(name);
        prefetch_failures_->add();
        in_flight_.erase(name);
        unpin_locked(name);
      }
      staged_cv_.notify_all();
      promise->set_value();
    } catch (const util::TransferError&) {
      // Retry budget exhausted: recover by falling back, not by failing
      // the pipeline — the next fetch() transfers synchronously.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (abandoned_.erase(name) == 0) failed_.insert(name);
        prefetch_failures_->add();
        in_flight_.erase(name);
        unpin_locked(name);
      }
      staged_cv_.notify_all();
      promise->set_value();
    } catch (...) {
      // Contract violations keep the seed's fail-fast semantics.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        abandoned_.erase(name);
        in_flight_.erase(name);
        unpin_locked(name);
      }
      staged_cv_.notify_all();
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

}  // namespace lmo::runtime
