#include "lmo/runtime/offload_manager.hpp"

#include <chrono>

#include "lmo/util/check.hpp"

namespace lmo::runtime {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

OffloadManager::OffloadManager(MemoryPool& device_pool, MemoryPool& host_pool,
                               int quant_bits, std::int64_t group_size)
    : device_pool_(device_pool),
      host_pool_(host_pool),
      quant_bits_(quant_bits),
      group_size_(group_size) {
  LMO_CHECK(quant_bits == 16 || quant_bits == 8 || quant_bits == 4);
}

void OffloadManager::register_tensor(const std::string& name,
                                     tensor::Tensor value, Tier tier) {
  LMO_CHECK(value.defined());
  LMO_CHECK(value.dtype() == tensor::DType::kF32);
  std::lock_guard<std::mutex> lock(mutex_);
  LMO_CHECK_MSG(entries_.count(name) == 0, "duplicate tensor name: " + name);

  Entry entry;
  entry.tier = tier;
  if (tier == Tier::kDevice) {
    entry.plain = std::move(value);
    entry.charge = PoolCharge(device_pool_, entry.plain.byte_size());
  } else if (quant_bits_ == 16) {
    entry.plain = value.cast(tensor::DType::kF16);
    entry.charge = PoolCharge(host_pool_, entry.plain.byte_size());
  } else {
    const auto start = std::chrono::steady_clock::now();
    entry.quantized = tensor::quantize(
        value, tensor::QuantConfig{quant_bits_, group_size_});
    stats_.quantize_seconds += seconds_since(start);
    entry.charge = PoolCharge(host_pool_, entry.quantized.byte_size());
  }
  entries_[name] = std::move(entry);
}

bool OffloadManager::contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

Tier OffloadManager::tier_of(const std::string& name) const {
  auto it = entries_.find(name);
  LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
  return it->second.tier;
}

std::size_t OffloadManager::stored_bytes(const std::string& name) const {
  auto it = entries_.find(name);
  LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
  const Entry& entry = it->second;
  return entry.quantized.defined() ? entry.quantized.byte_size()
                                   : entry.plain.byte_size();
}

tensor::Tensor OffloadManager::materialize(const Entry& entry) {
  // Host → device transfer of the stored payload. Entries are immutable
  // after registration, so this runs without the manager lock; stats are
  // updated by the caller under the lock.
  if (entry.quantized.defined()) {
    return tensor::dequantize(entry.quantized);
  }
  return entry.plain.cast(tensor::DType::kF32);
}

tensor::Tensor OffloadManager::fetch(const std::string& name) {
  const Entry* entry = nullptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
    ++stats_.fetches;
    entry = &it->second;
    if (entry->tier == Tier::kDevice) {
      ++stats_.device_hits;
      return entry->plain;  // already f32, shared storage
    }
    // An in-flight prefetch of this tensor will stage it shortly; waiting
    // is cheaper than a duplicate transfer.
    staged_cv_.wait(lock, [&] { return in_flight_.count(name) == 0; });
    auto staged = staged_.find(name);
    if (staged != staged_.end()) {
      tensor::Tensor value = std::move(staged->second);
      staged_.erase(staged);
      ++stats_.staging_hits;
      return value;
    }
    const std::size_t payload = entry->quantized.defined()
                                    ? entry->quantized.byte_size()
                                    : entry->plain.byte_size();
    stats_.bytes_host_to_device += static_cast<double>(payload);
  }
  const auto start = std::chrono::steady_clock::now();
  tensor::Tensor value = materialize(*entry);
  if (entry->quantized.defined()) {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.dequantize_seconds += seconds_since(start);
  }
  return value;
}

std::future<void> OffloadManager::prefetch(const std::string& name,
                                           parallel::ThreadPool& pool) {
  auto promise = std::make_shared<std::promise<void>>();
  auto future = promise->get_future();
  // Claim the in-flight slot at submit time so a concurrent fetch() of the
  // same name waits for this load instead of duplicating the transfer.
  const Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    LMO_CHECK_MSG(it != entries_.end(), "unknown tensor: " + name);
    entry = &it->second;
    if (entry->tier == Tier::kDevice || staged_.count(name) != 0 ||
        in_flight_.count(name) != 0) {
      promise->set_value();
      return future;
    }
    in_flight_.insert(name);
    const std::size_t payload = entry->quantized.defined()
                                    ? entry->quantized.byte_size()
                                    : entry->plain.byte_size();
    stats_.bytes_host_to_device += static_cast<double>(payload);
  }
  pool.submit([this, name, entry, promise] {
    try {
      const auto start = std::chrono::steady_clock::now();
      tensor::Tensor value = materialize(*entry);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (entry->quantized.defined()) {
          stats_.dequantize_seconds += seconds_since(start);
        }
        staged_.emplace(name, std::move(value));
        in_flight_.erase(name);
      }
      staged_cv_.notify_all();
      promise->set_value();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        in_flight_.erase(name);
      }
      staged_cv_.notify_all();
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

}  // namespace lmo::runtime
