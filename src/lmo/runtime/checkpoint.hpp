// Generator checkpoint payload: the codecs behind Generator::snapshot() /
// Generator::resume() (see generator.hpp for the session model). A
// checkpoint captures everything a fresh process needs to continue a
// generation session byte-identically:
//
//   - a full RuntimeConfig fingerprint (weights are synthetic + seeded, so
//     the config reconstructs them exactly — they are not serialized),
//   - session progress: prompts, tokens produced so far, the next-token
//     cursor, accumulated phase times,
//   - the sampling RNG state (xoshiro256** words),
//   - the fault injector's per-site schedule positions, so an active chaos
//     schedule continues where it left off instead of restarting,
//   - every (sequence, layer) KV cache, bit-exactly for all three flavors.
//
// The per-cache and config codecs are exposed here so tests can exercise
// round-trips and corruption handling without driving a whole Generator.
#pragma once

#include <memory>
#include <string>

#include "lmo/ckpt/binary_io.hpp"
#include "lmo/runtime/generator.hpp"
#include "lmo/runtime/kv_cache.hpp"
#include "lmo/runtime/mempool.hpp"
#include "lmo/runtime/paged_kv.hpp"

namespace lmo::runtime {

/// Write / read a complete RuntimeConfig (the checkpoint's config
/// fingerprint). Every field participates: resuming under a different
/// pool size or thread count would change the fault/transfer schedule and
/// silently break determinism, so it is treated as a mismatch.
void encode_runtime_config(ckpt::ByteWriter& writer,
                           const RuntimeConfig& config);
RuntimeConfig decode_runtime_config(ckpt::ByteReader& reader);

/// Field-by-field equality of the fingerprint (the RuntimeConfig subset
/// that encode_runtime_config captures).
bool runtime_config_equal(const RuntimeConfig& a, const RuntimeConfig& b);

/// Pools a KV-cache decode allocates from: `pool` backs dense and window
/// caches, `page_pool` backs paged caches. Only the member matching the
/// encoded flavor is touched. When `integrity` is set, restored dense
/// caches are attached to it (label `kv_region`) and re-fingerprint their
/// rows, so verification continues seamlessly across a resume.
struct KVRestoreContext {
  MemoryPool* pool = nullptr;
  PagePool* page_pool = nullptr;
  integrity::ChecksumRegistry* integrity = nullptr;
  std::string kv_region;
};

/// Serialize one KV cache, dispatching on its dynamic flavor. Dense caches
/// store their rows verbatim (quantized payloads bit-exact); window caches
/// store the raw rings plus cursors; paged caches store the gathered K/V
/// matrices (page structure is a function of length, so re-appending
/// reproduces it exactly).
void encode_kv_cache(ckpt::ByteWriter& writer, const KVCacheBase& cache);
std::unique_ptr<KVCacheBase> decode_kv_cache(ckpt::ByteReader& reader,
                                             const KVRestoreContext& context);

/// Cheap header+fingerprint probe of a checkpoint file: validates the
/// envelope (CRC included) and decodes config + progress, without
/// touching pools or building caches. `lmo resume` uses this to
/// reconstruct the Generator before calling Generator::resume().
struct CheckpointMeta {
  RuntimeConfig config;
  std::size_t num_sequences = 0;
  std::int64_t gen_len = 0;
  std::int64_t produced = 0;  ///< tokens per sequence already generated
};

CheckpointMeta read_checkpoint_meta(const std::string& path);

}  // namespace lmo::runtime
