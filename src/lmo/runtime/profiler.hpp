// Offline profiling of the runtime's *real* kernels — the paper's §4.2
// workflow: "we use offline profiling and collect the execution times of
// those operations with various intra-op parallelism ... the profiling
// results are repeatedly used during the online LLM inference."
//
// profile_attention_op() executes the real attention layer (through the
// Transformer, with a prefilled KV cache) at each requested intra-op
// thread count and records median wall times into a ProfileDB. Because
// Algorithm 3 consumes *per-operator* times, the measured layer time is
// apportioned across the compute graph's operators by their modeled FLOP/
// byte shares — a measured total with model-shaped structure.
#pragma once

#include <cstdint>
#include <vector>

#include "lmo/model/llm_config.hpp"
#include "lmo/model/opgraph.hpp"
#include "lmo/parallel/profile_db.hpp"

namespace lmo::runtime {

struct ProfileOptions {
  std::int64_t seq_len = 64;   ///< prefilled context before measuring
  std::int64_t batch = 2;      ///< sequences measured together
  int repeats = 3;             ///< median over this many runs
  std::uint64_t seed = 7;
};

/// Measure one real decode step of `spec` (laptop-scale specs only) at
/// each thread count; returns (a) the raw per-layer-step seconds keyed as
/// "decode_layer_step", and (b) per-operator entries for every op in
/// `graph`, apportioned by modeled cost share — ready to pass to
/// parallel::find_optimal_parallelism as measured overrides.
parallel::ProfileDB profile_attention_op(const model::ModelSpec& spec,
                                         const model::OpGraph& graph,
                                         const std::vector<int>&
                                             thread_counts,
                                         const ProfileOptions& options = {});

}  // namespace lmo::runtime
