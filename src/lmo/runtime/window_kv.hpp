// Sliding-window KV cache — the Longformer-style bounded-attention scheme
// the paper's related work cites for long-context scaling. The cache keeps
// only the most recent `window` token slots in a ring; attention over it
// sees a fixed-size context, so per-step cost and residency stop growing
// with sequence length. Unlike the exact caches this is an *approximation*
// (old context is forgotten); the tests quantify the accuracy cost.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lmo/runtime/kv_cache.hpp"
#include "lmo/runtime/mempool.hpp"

namespace lmo::runtime {

class WindowKVCache : public KVCacheBase {
 public:
  /// Keeps at most `window` most-recent rows (f32). `pool` is charged with
  /// the ring's full residency up front — the point of the scheme is a
  /// fixed memory bound.
  WindowKVCache(std::int64_t hidden, std::int64_t window, MemoryPool& pool);
  ~WindowKVCache() override;
  WindowKVCache(WindowKVCache&&) noexcept;
  WindowKVCache(const WindowKVCache&) = delete;
  WindowKVCache& operator=(const WindowKVCache&) = delete;

  void append(const tensor::Tensor& k_row,
              const tensor::Tensor& v_row) override;
  /// Rows currently visible (≤ window; < window until it fills).
  std::int64_t length() const override;
  tensor::Tensor keys() const override;
  tensor::Tensor values() const override;
  /// Truncation drops the *newest* rows (rollback semantics shared with
  /// the exact caches); only supported back to the window contents.
  void truncate(std::int64_t new_length) override;
  std::unique_ptr<KVCacheBase> clone() const override;

  std::int64_t window() const { return window_; }
  /// Total tokens ever appended (≥ length()).
  std::int64_t appended() const { return appended_; }
  /// Tokens forgotten so far (= appended − length).
  std::int64_t evicted() const { return appended_ - length(); }

  /// Raw ring contents ([window × hidden], physical slot order) for
  /// checkpoint serialization. Captured together with appended()/length(),
  /// they are the cache's complete state.
  const std::vector<float>& k_ring() const { return k_ring_; }
  const std::vector<float>& v_ring() const { return v_ring_; }

  /// Restore the exact physical ring state (an append-based replay would
  /// lose the ring phase: slot = appended % window). Requires a fresh
  /// cache and matching ring sizes; throws CheckError otherwise.
  void restore(std::int64_t appended, std::int64_t visible,
               std::vector<float> k_ring, std::vector<float> v_ring);

 private:
  tensor::Tensor gather(const std::vector<float>& ring) const;

  std::int64_t hidden_;
  std::int64_t window_;
  MemoryPool* pool_;
  std::vector<float> k_ring_;  ///< [window × hidden]
  std::vector<float> v_ring_;
  std::int64_t appended_ = 0;
  std::int64_t visible_ = 0;  ///< ≤ window
};

}  // namespace lmo::runtime
