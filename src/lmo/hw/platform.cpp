#include "lmo/hw/platform.hpp"

#include "lmo/util/check.hpp"
#include "lmo/util/units.hpp"

namespace lmo::hw {

using util::kGB;
using util::kTFLOP;

const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kGPU:
      return "gpu";
    case DeviceKind::kCPU:
      return "cpu";
    case DeviceKind::kDisk:
      return "disk";
  }
  LMO_UNREACHABLE("bad DeviceKind");
}

void Device::validate() const {
  LMO_CHECK_GT(peak_flops, 0.0);
  LMO_CHECK_GT(mem_bandwidth, 0.0);
  LMO_CHECK_GT(freq_hz, 0.0);
  LMO_CHECK_GT(mem_capacity, 0.0);
  LMO_CHECK_GE(cores, 1);
  LMO_CHECK_GE(hw_threads, cores);
}

double Link::transfer_seconds(double bytes) const {
  LMO_CHECK_GE(bytes, 0.0);
  if (bytes == 0.0) return 0.0;
  LMO_CHECK_GT(bandwidth, 0.0);
  return latency + bytes / bandwidth;
}

void Link::validate() const {
  LMO_CHECK_GE(bandwidth, 0.0);
  LMO_CHECK_GE(latency, 0.0);
}

void Platform::validate() const {
  cpu.validate();
  gpu.validate();
  disk.validate();
  LMO_CHECK_GE(num_gpus, 1);
  cpu_to_gpu.validate();
  gpu_to_cpu.validate();
  disk_to_cpu.validate();
  gpu_to_gpu.validate();
  LMO_CHECK(cpu.kind == DeviceKind::kCPU);
  LMO_CHECK(gpu.kind == DeviceKind::kGPU);
}

Platform Platform::a100_single() {
  Platform p;
  p.name = "a100-single";

  p.cpu = Device{
      .kind = DeviceKind::kCPU,
      .name = "2x Xeon Gold 6330",
      .peak_flops = 4.3 * kTFLOP,   // 56 cores × 2.0 GHz × AVX-512 FMA
      .mem_bandwidth = 190.0 * kGB, // 16 channels DDR4-2933, achieved STREAM
      .freq_hz = 2.0e9,
      .mem_capacity = 240.0 * kGB,
      .cores = 56,
      .hw_threads = 112,
  };
  p.gpu = Device{
      .kind = DeviceKind::kGPU,
      .name = "NVIDIA A100-40GB",
      .peak_flops = 312.0 * kTFLOP,  // fp16 tensor cores
      .mem_bandwidth = 1555.0 * kGB,
      .freq_hz = 1.41e9,
      .mem_capacity = 40.0 * kGB,
      .cores = 108,  // SMs
      .hw_threads = 108,
  };
  p.disk = Device{
      .kind = DeviceKind::kDisk,
      .name = "NVMe SSD",
      .peak_flops = 1.0,  // storage only
      .mem_bandwidth = 3.0 * kGB,
      .freq_hz = 1.0,
      .mem_capacity = 2000.0 * kGB,
      .cores = 1,
      .hw_threads = 1,
  };
  // PCIe 4.0 x16: 32 GB/s per direction (64 GB/s bidirectional, Table 4).
  p.cpu_to_gpu = Link{.bandwidth = 32.0 * kGB, .latency = 15e-6};
  p.gpu_to_cpu = Link{.bandwidth = 32.0 * kGB, .latency = 15e-6};
  p.disk_to_cpu = Link{.bandwidth = 3.0 * kGB, .latency = 100e-6};
  p.gpu_to_gpu = Link{.bandwidth = 0.0, .latency = 0.0};
  p.num_gpus = 1;
  p.validate();
  return p;
}

Platform Platform::h100_single() {
  Platform p = a100_single();
  p.name = "h100-single";
  p.gpu.name = "NVIDIA H100-80GB";
  p.gpu.peak_flops = 990.0 * kTFLOP;  // fp16 tensor cores (dense)
  p.gpu.mem_bandwidth = 3350.0 * kGB;
  p.gpu.freq_hz = 1.78e9;
  p.gpu.mem_capacity = 80.0 * kGB;
  p.gpu.cores = 132;  // SMs
  p.gpu.hw_threads = 132;
  // PCIe 5.0 x16: 64 GB/s per direction (128 GB/s bidirectional).
  p.cpu_to_gpu = Link{.bandwidth = 64.0 * kGB, .latency = 12e-6};
  p.gpu_to_cpu = Link{.bandwidth = 64.0 * kGB, .latency = 12e-6};
  p.validate();
  return p;
}

Platform Platform::rtx4090_desktop() {
  Platform p = a100_single();
  p.name = "rtx4090-desktop";
  p.cpu = Device{
      .kind = DeviceKind::kCPU,
      .name = "16-core desktop CPU",
      .peak_flops = 1.5 * kTFLOP,
      .mem_bandwidth = 70.0 * kGB,  // dual-channel DDR5
      .freq_hz = 4.5e9,
      .mem_capacity = 128.0 * kGB,
      .cores = 16,
      .hw_threads = 32,
  };
  p.gpu = Device{
      .kind = DeviceKind::kGPU,
      .name = "NVIDIA RTX 4090",
      .peak_flops = 165.0 * kTFLOP,  // fp16 tensor cores
      .mem_bandwidth = 1008.0 * kGB,
      .freq_hz = 2.52e9,
      .mem_capacity = 24.0 * kGB,
      .cores = 128,
      .hw_threads = 128,
  };
  p.cpu_to_gpu = Link{.bandwidth = 32.0 * kGB, .latency = 15e-6};
  p.gpu_to_cpu = Link{.bandwidth = 32.0 * kGB, .latency = 15e-6};
  p.validate();
  return p;
}

Platform Platform::v100_quad() {
  Platform p;
  p.name = "v100-quad";

  p.cpu = Device{
      .kind = DeviceKind::kCPU,
      .name = "2x IBM POWER9",
      .peak_flops = 1.9 * kTFLOP,   // 44 cores, narrower SIMD than AVX-512
      .mem_bandwidth = 220.0 * kGB, // 8-channel DDR4 per socket
      .freq_hz = 3.0e9,
      .mem_capacity = 280.0 * kGB,
      .cores = 44,
      .hw_threads = 176,  // SMT4
  };
  p.gpu = Device{
      .kind = DeviceKind::kGPU,
      .name = "NVIDIA V100-16GB",
      .peak_flops = 112.0 * kTFLOP,  // fp16 tensor cores
      .mem_bandwidth = 900.0 * kGB,
      .freq_hz = 1.38e9,
      .mem_capacity = 16.0 * kGB,
      .cores = 80,
      .hw_threads = 80,
  };
  p.disk = Device{
      .kind = DeviceKind::kDisk,
      .name = "NVMe SSD",
      .peak_flops = 1.0,
      .mem_bandwidth = 3.0 * kGB,
      .freq_hz = 1.0,
      .mem_capacity = 2000.0 * kGB,
      .cores = 1,
      .hw_threads = 1,
  };
  // NVLink with unified addressing needs no pinned staging; per-chunk cost
  // is an order of magnitude below the PCIe platform's.
  p.eff.cache_chunk_overhead = 0.4e-3;
  // NVLink 2.0 CPU<->GPU on POWER9: 150 GB/s per direction (300 bidir).
  p.cpu_to_gpu = Link{.bandwidth = 150.0 * kGB, .latency = 5e-6};
  p.gpu_to_cpu = Link{.bandwidth = 150.0 * kGB, .latency = 5e-6};
  p.disk_to_cpu = Link{.bandwidth = 3.0 * kGB, .latency = 100e-6};
  p.gpu_to_gpu = Link{.bandwidth = 150.0 * kGB, .latency = 5e-6};
  p.num_gpus = 4;
  p.validate();
  return p;
}

}  // namespace lmo::hw
