// Hardware platform descriptions (paper Table 4) plus the calibration
// constants ("effective efficiencies") that turn peak numbers into achieved
// numbers. All units are SI: bytes, seconds, FLOP/s, Hz.
//
// The two presets mirror the paper's testbeds:
//   * a100_single():  2× Xeon Gold 6330 (56 cores, 240 GB) + 1× A100-40GB,
//                     PCIe 4.0 ×16 (64 GB/s bidirectional).
//   * v100_quad():    2× POWER9 (44 cores, 280 GB) + 4× V100-16GB,
//                     NVLink 2.0 (300 GB/s bidirectional).
#pragma once

#include <cstdint>
#include <string>

namespace lmo::hw {

enum class DeviceKind { kGPU, kCPU, kDisk };

const char* to_string(DeviceKind kind);

/// One compute device. `peak_flops` is dense-matmul throughput in the
/// precision the device actually computes in (fp16 tensor cores for GPUs,
/// fp32 SIMD for CPUs).
struct Device {
  DeviceKind kind = DeviceKind::kCPU;
  std::string name;
  double peak_flops = 0.0;     ///< FLOP/s
  double mem_bandwidth = 0.0;  ///< bytes/s
  double freq_hz = 0.0;        ///< core clock; elements/s for scalar scans
  double mem_capacity = 0.0;   ///< bytes
  int cores = 1;               ///< physical cores
  int hw_threads = 1;          ///< hardware threads (SMT)

  void validate() const;
};

/// A unidirectional transfer path. Transfers cost latency + bytes/bandwidth.
struct Link {
  double bandwidth = 0.0;  ///< bytes/s, per direction
  double latency = 0.0;    ///< seconds per transfer

  double transfer_seconds(double bytes) const;
  void validate() const;
};

/// Calibration constants: the fraction of peak each operation class
/// achieves, plus fixed per-task overheads. Tuned once against the paper's
/// absolute OPT-30B numbers (see DESIGN.md §5); every experiment then reads
/// the same values, so all *comparisons* are apples-to-apples.
struct Efficiency {
  double gpu_matmul = 0.45;      ///< of GPU peak_flops (large-batch GEMM)
  double gpu_mem = 0.80;         ///< of GPU mem_bandwidth (elementwise)
  double pcie = 0.62;            ///< of link bandwidth (pinned, chunked)
  double cpu_matmul = 0.55;      ///< of CPU peak_flops
  /// Effective CPU memory bandwidth achieved by the memory-bound attention
  /// scan under *default* framework threading (oversubscribed threads,
  /// cache thrash — paper §4.1). Fraction of cpu.mem_bandwidth.
  double cpu_attention_default = 0.065;
  /// Same, under LM-Offload's parallelism control (paper Fig. 8: compute
  /// task −32%, end-to-end −38%).
  double cpu_attention_tuned = 0.105;
  /// CPU-side quant/dequant effective memory bandwidth fraction.
  double cpu_quant = 0.30;
  /// GPU-side dequant is elementwise unpack, not tensor-core work.
  double gpu_dequant_mem = 0.35;
  /// Fixed overhead per asynchronous task launch + per-layer sync,
  /// seconds. Penalizes schedules with many tiny transfers.
  double task_overhead = 2.2e-3;
  /// Per-batch pinned-buffer staging cost when the KV cache streams over
  /// PCIe for GPU attention: the cache lives as one buffer per (layer,
  /// batch) in host memory, so every layer's load issues num_batches
  /// separate pin+copy+launch sequences (unlike the single contiguous
  /// weight buffer). Seconds per chunk.
  double cache_chunk_overhead = 4.4e-3;
  /// CPU-attention bandwidth fraction FlexGen's LP *assumes* — an
  /// optimistic roofline that ignores framework threading effects. The gap
  /// between this and cpu_attention_default is the paper's criticism of
  /// FlexGen's policy search ("inaccurately estimating the performance
  /// impact of asynchronous execution").
  double cpu_attention_assumed = 0.25;
};

/// A full platform: one CPU complex, `num_gpus` identical GPUs, a disk, and
/// the links between them.
struct Platform {
  std::string name;
  Device cpu;
  Device gpu;
  Device disk;
  int num_gpus = 1;
  Link cpu_to_gpu;   ///< host-to-device, per direction
  Link gpu_to_cpu;   ///< device-to-host, per direction
  Link disk_to_cpu;  ///< weight initialization path (T_init)
  Link gpu_to_gpu;   ///< inter-GPU (pipeline parallelism); 0 bw if 1 GPU
  Efficiency eff;

  void validate() const;

  // -- achieved (post-efficiency) rates, used by perf models ---------------
  double gpu_matmul_flops() const { return gpu.peak_flops * eff.gpu_matmul; }
  double cpu_matmul_flops() const { return cpu.peak_flops * eff.cpu_matmul; }
  double gpu_mem_bw() const { return gpu.mem_bandwidth * eff.gpu_mem; }
  double h2d_bw() const { return cpu_to_gpu.bandwidth * eff.pcie; }
  double d2h_bw() const { return gpu_to_cpu.bandwidth * eff.pcie; }
  double cpu_attention_bw(bool parallelism_control) const {
    return cpu.mem_bandwidth * (parallelism_control
                                    ? eff.cpu_attention_tuned
                                    : eff.cpu_attention_default);
  }
  double cpu_quant_bw() const { return cpu.mem_bandwidth * eff.cpu_quant; }
  double gpu_dequant_bw() const {
    return gpu.mem_bandwidth * eff.gpu_dequant_mem;
  }

  /// Paper Table 4, single-GPU platform.
  static Platform a100_single();
  /// Paper Table 4, multi-GPU platform (use num_gpus ≤ 4 of it).
  static Platform v100_quad();
  /// H100-80GB + PCIe 5.0 ×16 node (the paper's intro example: even 80 GB
  /// cannot hold LLaMA-2-70B fp16).
  static Platform h100_single();
  /// Consumer box: RTX-4090-24GB, 16-core desktop CPU, PCIe 4.0 ×16 —
  /// the cost-constrained deployment offloading exists for.
  static Platform rtx4090_desktop();
};

}  // namespace lmo::hw
