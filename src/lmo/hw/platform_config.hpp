// Text-format platform descriptions, so users can model their own hardware
// without recompiling. Simple "key = value" lines, '#' comments, units in
// the key names. Unspecified keys inherit from a base preset.
//
//   base = a100-single
//   gpu.mem_capacity_gb = 24        # e.g. an RTX 4090
//   gpu.peak_tflops = 165
//   cpu.cores = 16
//   link.h2d_gbps = 25
//
// Recognized keys (all optional):
//   base                             "a100-single" | "v100-quad"
//   name
//   gpu.mem_capacity_gb   gpu.peak_tflops   gpu.mem_bandwidth_gbps
//   cpu.mem_capacity_gb   cpu.peak_tflops   cpu.mem_bandwidth_gbps
//   cpu.cores             cpu.hw_threads
//   link.h2d_gbps         link.d2h_gbps     link.disk_gbps
//   num_gpus
//   eff.pcie              eff.gpu_matmul    eff.cpu_attention_default
//   eff.cpu_attention_tuned
#pragma once

#include <string>

#include "lmo/hw/platform.hpp"

namespace lmo::hw {

/// Parse a config from text; throws CheckError with the offending line on
/// malformed input or unknown keys.
Platform platform_from_string(const std::string& text);

/// Load from a file path.
Platform platform_from_file(const std::string& path);

/// Resolve "a100-single" / "v100-quad" preset names; throws on unknown.
Platform platform_by_name(const std::string& name);

}  // namespace lmo::hw
