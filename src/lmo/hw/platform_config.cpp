#include "lmo/hw/platform_config.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "lmo/util/check.hpp"
#include "lmo/util/string_util.hpp"
#include "lmo/util/units.hpp"

namespace lmo::hw {
namespace {

using util::kGB;
using util::kTFLOP;

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    LMO_CHECK_MSG(consumed == value.size(),
                  "trailing characters in value for key: " + key);
    return parsed;
  } catch (const std::exception&) {
    LMO_CHECK_MSG(false, "cannot parse number '" + value + "' for key: " +
                             key);
    LMO_UNREACHABLE("unreachable");
  }
}

}  // namespace

Platform platform_by_name(const std::string& name) {
  if (name == "a100-single") return Platform::a100_single();
  if (name == "v100-quad") return Platform::v100_quad();
  if (name == "h100-single") return Platform::h100_single();
  if (name == "rtx4090-desktop") return Platform::rtx4090_desktop();
  LMO_CHECK_MSG(false, "unknown platform preset: " + name);
  LMO_UNREACHABLE("unreachable");
}

Platform platform_from_string(const std::string& text) {
  // First pass: collect key/value pairs, resolve the base preset.
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const std::string trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    LMO_CHECK_MSG(eq != std::string::npos,
                  "missing '=' on line " + std::to_string(line_number) +
                      ": " + trimmed);
    const std::string key = util::trim(trimmed.substr(0, eq));
    const std::string value = util::trim(trimmed.substr(eq + 1));
    LMO_CHECK_MSG(!key.empty() && !value.empty(),
                  "empty key or value on line " +
                      std::to_string(line_number));
    kv[key] = value;
  }

  Platform platform = Platform::a100_single();
  if (auto it = kv.find("base"); it != kv.end()) {
    platform = platform_by_name(it->second);
    kv.erase(it);
  }

  for (const auto& [key, value] : kv) {
    if (key == "name") {
      platform.name = value;
    } else if (key == "gpu.mem_capacity_gb") {
      platform.gpu.mem_capacity = parse_double(key, value) * kGB;
    } else if (key == "gpu.peak_tflops") {
      platform.gpu.peak_flops = parse_double(key, value) * kTFLOP;
    } else if (key == "gpu.mem_bandwidth_gbps") {
      platform.gpu.mem_bandwidth = parse_double(key, value) * kGB;
    } else if (key == "cpu.mem_capacity_gb") {
      platform.cpu.mem_capacity = parse_double(key, value) * kGB;
    } else if (key == "cpu.peak_tflops") {
      platform.cpu.peak_flops = parse_double(key, value) * kTFLOP;
    } else if (key == "cpu.mem_bandwidth_gbps") {
      platform.cpu.mem_bandwidth = parse_double(key, value) * kGB;
    } else if (key == "cpu.cores") {
      platform.cpu.cores = static_cast<int>(parse_double(key, value));
    } else if (key == "cpu.hw_threads") {
      platform.cpu.hw_threads = static_cast<int>(parse_double(key, value));
    } else if (key == "link.h2d_gbps") {
      platform.cpu_to_gpu.bandwidth = parse_double(key, value) * kGB;
    } else if (key == "link.d2h_gbps") {
      platform.gpu_to_cpu.bandwidth = parse_double(key, value) * kGB;
    } else if (key == "link.disk_gbps") {
      platform.disk_to_cpu.bandwidth = parse_double(key, value) * kGB;
      platform.disk.mem_bandwidth = platform.disk_to_cpu.bandwidth;
    } else if (key == "num_gpus") {
      platform.num_gpus = static_cast<int>(parse_double(key, value));
    } else if (key == "eff.pcie") {
      platform.eff.pcie = parse_double(key, value);
    } else if (key == "eff.gpu_matmul") {
      platform.eff.gpu_matmul = parse_double(key, value);
    } else if (key == "eff.cpu_attention_default") {
      platform.eff.cpu_attention_default = parse_double(key, value);
    } else if (key == "eff.cpu_attention_tuned") {
      platform.eff.cpu_attention_tuned = parse_double(key, value);
    } else {
      LMO_CHECK_MSG(false, "unknown platform config key: " + key);
    }
  }
  platform.validate();
  return platform;
}

Platform platform_from_file(const std::string& path) {
  std::ifstream in(path);
  LMO_CHECK_MSG(in.good(), "cannot open platform config: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return platform_from_string(buffer.str());
}

}  // namespace lmo::hw
