// Tensor-size calculators (paper Eqs. 17-19 and the footprint numbers in
// §3.1). Everything returns *bytes*; element width is a parameter so the
// same formulas serve fp16 baselines and 4/8-bit quantized variants.
#pragma once

#include <cstdint>

#include "lmo/model/llm_config.hpp"

namespace lmo::model {

/// A generation workload: prompt length s, generation length n, per-GPU
/// batch size, and the zig-zag block = gpu_batch × num_batches sequences
/// that traverse the layers together (FlexGen's block schedule).
struct Workload {
  std::int64_t prompt_len = 64;   ///< s
  std::int64_t gen_len = 128;     ///< n
  std::int64_t gpu_batch = 64;    ///< inference batch size per compute step
  std::int64_t num_batches = 10;  ///< batches per zig-zag block

  std::int64_t block_size() const { return gpu_batch * num_batches; }  ///< bls
  /// Tokens produced per full block pass (throughput numerator).
  std::int64_t total_tokens() const { return block_size() * gen_len; }

  void validate() const;
};

/// Bytes per stored element given a bit width (16 for fp16, 4/8 quantized).
double bytes_per_element(int bits);

// -- weights ----------------------------------------------------------------

/// One transformer layer's weights.
double layer_weight_bytes(const ModelSpec& spec, int bits);
/// All layers + embeddings.
double total_weight_bytes(const ModelSpec& spec, int bits);

// -- KV cache (per transformer layer, for a whole zig-zag block) -------------

/// Eq. 17: prefilled KV cache, 2·(s+1)·h1·bls elements.
double pf_kv_cache_bytes(const ModelSpec& spec, const Workload& w, int bits);
/// Eq. 18 (per-token average): old KV consumed in one token generation,
/// 2·(s + n/2)·h1·bls elements.
double old_kv_cache_avg_bytes(const ModelSpec& spec, const Workload& w,
                              int bits);
/// KV size at a specific decode step t ∈ [0, n): 2·(s + t)·h1·bls elements.
double kv_cache_bytes_at(const ModelSpec& spec, const Workload& w,
                         std::int64_t t, int bits);
/// Eq. 19 (per token): newly generated KV, 2·h1·bls elements.
double new_kv_cache_bytes(const ModelSpec& spec, const Workload& w, int bits);
/// Peak KV cache across all layers at end of generation (capacity planning).
double peak_kv_cache_total_bytes(const ModelSpec& spec, const Workload& w,
                                 int bits);

// -- activations --------------------------------------------------------------

/// Hidden activations crossing the CPU/GPU boundary per layer per token
/// step: bls·h1 elements (the paper: "KB scale ... <1% of inference time").
double activation_bytes(const ModelSpec& spec, const Workload& w, int bits);

// -- aggregate footprint ------------------------------------------------------

struct FootprintBreakdown {
  double weights = 0.0;
  double kv_cache = 0.0;
  double activations = 0.0;
  double total() const { return weights + kv_cache + activations; }
};

/// Total memory the inference touches (paper §3.1: OPT-30B with s=64,
/// n=128, bls=640 → ≈214 GB: 55 GB weights + 157 GB KV).
FootprintBreakdown inference_footprint(const ModelSpec& spec,
                                       const Workload& w, int weight_bits,
                                       int kv_bits);

// -- compute volumes ----------------------------------------------------------

/// FLOPs of one layer's attention for one decode step over the whole block
/// (QKV projections + QKᵀ + AV + output projection).
double attention_decode_flops(const ModelSpec& spec, const Workload& w,
                              std::int64_t t);
/// Projection-only part (QKV + output, 2·4·h1² per token): weight GEMMs
/// that stay on the GPU even when attention is offloaded.
double attention_projection_flops(const ModelSpec& spec, const Workload& w);
/// Cache-touching part (QKᵀ + AV + softmax): what attention offloading
/// actually moves to the CPU, next to the KV cache.
double attention_score_flops(const ModelSpec& spec, const Workload& w,
                             std::int64_t t);
/// FLOPs of one layer's MLP for one decode step over the whole block.
double mlp_decode_flops(const ModelSpec& spec, const Workload& w);
/// FLOPs of one layer over the full prompt (prefill), whole block.
double layer_prefill_flops(const ModelSpec& spec, const Workload& w);

/// Bytes of KV cache *touched* by attention at decode step t (the
/// memory-bound part of the compute task).
double attention_kv_bytes_touched(const ModelSpec& spec, const Workload& w,
                                  std::int64_t t, int bits);

}  // namespace lmo::model
