// Operation dependency graphs (paper Fig. 6). A generic small DAG of named
// operators with per-op cost metadata, plus a builder for the attention
// compute task's graph. The parallelism controller (lmo::parallel) runs
// Kahn's algorithm over these graphs to find the maximum concurrency level
// that determines inter-op parallelism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmo::model {

using OpId = int;

struct OpNode {
  std::string name;
  double flops = 0.0;      ///< arithmetic volume
  double bytes = 0.0;      ///< memory traffic volume
  int bundle = -1;         ///< operator-bundling group (-1 = unbundled)
};

class OpGraph {
 public:
  OpId add_op(std::string name, double flops = 0.0, double bytes = 0.0);
  /// `from` must complete before `to` starts.
  void add_edge(OpId from, OpId to);

  std::size_t size() const { return nodes_.size(); }
  const OpNode& node(OpId id) const;
  OpNode& node(OpId id);
  const std::vector<OpId>& successors(OpId id) const;
  const std::vector<OpId>& predecessors(OpId id) const;

  /// Topological order (Kahn); throws CheckError if cyclic.
  std::vector<OpId> topological_order() const;
  bool is_acyclic() const;

  /// Kahn level sets: ops grouped by longest-path depth from sources. The
  /// size of the largest level is the maximum concurrency level the paper's
  /// Algorithm 3 uses (Line 4).
  std::vector<std::vector<OpId>> level_sets() const;
  std::size_t max_concurrency() const;

  double total_flops() const;
  double total_bytes() const;

 private:
  std::vector<OpNode> nodes_;
  std::vector<std::vector<OpId>> succ_;
  std::vector<std::vector<OpId>> pred_;
};

/// Build the attention compute-task graph of Fig. 6 for `num_batches`
/// concurrently in-flight batches. Per batch: layernorm → {Q,K,V}
/// projections (parallel) → KV append → QKᵀ → softmax → AV → output
/// projection. Costs are filled from the model/workload dimensions at
/// decode step `t`.
struct AttentionGraphParams {
  std::int64_t hidden = 0;
  std::int64_t seq_len = 0;    ///< s + t at the step being modeled
  std::int64_t batch = 0;      ///< sequences per batch
  int num_batches = 1;         ///< batches co-resident in the compute task
  int kv_bits = 16;
};

OpGraph build_attention_graph(const AttentionGraphParams& params);

/// Graphviz DOT rendering of an op graph (paper Fig. 6's picture), nodes
/// labelled with name + FLOPs/bytes, same-bundle ops clustered.
std::string to_dot(const OpGraph& graph, const std::string& title = "ops");

}  // namespace lmo::model
