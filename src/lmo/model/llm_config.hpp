// Transformer architecture descriptions for the models the paper evaluates
// (OPT-13/30/66B, LLaMA-13/30/65B) plus a tiny preset for the real-execution
// runtime. Only the quantities that determine offloading behaviour are kept:
// layer count, hidden sizes, head count, vocab.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lmo::model {

/// MLP non-linearity. OPT uses ReLU, LLaMA uses SiLU (in a gated MLP),
/// the tiny runtime preset defaults to GELU.
enum class Activation { kGelu, kRelu, kSilu };

const char* to_string(Activation activation);

struct ModelSpec {
  std::string name;
  std::int64_t num_layers = 0;   ///< l
  std::int64_t hidden = 0;       ///< h1
  std::int64_t mlp_hidden = 0;   ///< h2 (intermediate size)
  std::int64_t num_heads = 0;
  std::int64_t vocab = 0;
  /// MLP weight matrices per layer: 2 for OPT (fc1, fc2), 3 for LLaMA
  /// (gate, up, down). The paper's num_weights formula assumes 2; we keep
  /// architecture-accurate counts and the perf model generalizes.
  int mlp_matrices = 2;
  Activation activation = Activation::kGelu;

  std::int64_t head_dim() const { return hidden / num_heads; }

  /// Attention weights per layer: Q, K, V, output projections (4·h1²).
  std::int64_t attention_weights_per_layer() const;
  /// MLP weights per layer: mlp_matrices · h1 · h2.
  std::int64_t mlp_weights_per_layer() const;
  /// num_weights in the paper's Eq. (12) context = attention + MLP.
  std::int64_t weights_per_layer() const;
  /// Embedding (+ unembedding, tied) parameters.
  std::int64_t embedding_weights() const;
  /// Total parameter count across all layers + embeddings.
  std::int64_t total_weights() const;

  void validate() const;

  // -- presets (architecture-accurate public configs) ----------------------
  static ModelSpec opt_13b();
  static ModelSpec opt_30b();
  static ModelSpec opt_66b();
  static ModelSpec llama_13b();
  static ModelSpec llama_30b();
  static ModelSpec llama_65b();
  /// Laptop-scale model for the real-execution runtime and tests.
  static ModelSpec tiny(std::int64_t layers = 2, std::int64_t hidden = 64,
                        std::int64_t heads = 4, std::int64_t vocab = 256);

  /// Lookup by name ("opt-30b", "llama-65b", ...); throws on unknown.
  static ModelSpec by_name(const std::string& name);
  static std::vector<std::string> known_names();
};

}  // namespace lmo::model
