#include "lmo/model/opgraph.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>

#include "lmo/util/check.hpp"

namespace lmo::model {

OpId OpGraph::add_op(std::string name, double flops, double bytes) {
  nodes_.push_back(OpNode{std::move(name), flops, bytes, -1});
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<OpId>(nodes_.size() - 1);
}

void OpGraph::add_edge(OpId from, OpId to) {
  LMO_CHECK_GE(from, 0);
  LMO_CHECK_LT(static_cast<std::size_t>(from), nodes_.size());
  LMO_CHECK_GE(to, 0);
  LMO_CHECK_LT(static_cast<std::size_t>(to), nodes_.size());
  LMO_CHECK_NE(from, to);
  succ_[static_cast<std::size_t>(from)].push_back(to);
  pred_[static_cast<std::size_t>(to)].push_back(from);
}

const OpNode& OpGraph::node(OpId id) const {
  LMO_CHECK_GE(id, 0);
  LMO_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

OpNode& OpGraph::node(OpId id) {
  LMO_CHECK_GE(id, 0);
  LMO_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<OpId>& OpGraph::successors(OpId id) const {
  LMO_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return succ_[static_cast<std::size_t>(id)];
}

const std::vector<OpId>& OpGraph::predecessors(OpId id) const {
  LMO_CHECK_LT(static_cast<std::size_t>(id), nodes_.size());
  return pred_[static_cast<std::size_t>(id)];
}

std::vector<OpId> OpGraph::topological_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (OpId s : succ_[i]) ++indegree[static_cast<std::size_t>(s)];
  }
  std::queue<OpId> ready;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push(static_cast<OpId>(i));
  }
  std::vector<OpId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const OpId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (OpId s : succ_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  LMO_CHECK_MSG(order.size() == nodes_.size(), "op graph has a cycle");
  return order;
}

bool OpGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const util::CheckError&) {
    return false;
  }
}

std::vector<std::vector<OpId>> OpGraph::level_sets() const {
  const auto order = topological_order();
  std::vector<int> level(nodes_.size(), 0);
  int max_level = 0;
  for (OpId id : order) {
    for (OpId p : pred_[static_cast<std::size_t>(id)]) {
      level[static_cast<std::size_t>(id)] =
          std::max(level[static_cast<std::size_t>(id)],
                   level[static_cast<std::size_t>(p)] + 1);
    }
    max_level = std::max(max_level, level[static_cast<std::size_t>(id)]);
  }
  std::vector<std::vector<OpId>> levels(
      static_cast<std::size_t>(max_level + 1));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    levels[static_cast<std::size_t>(level[i])].push_back(
        static_cast<OpId>(i));
  }
  return levels;
}

std::size_t OpGraph::max_concurrency() const {
  std::size_t best = 0;
  for (const auto& level : level_sets()) best = std::max(best, level.size());
  return best;
}

double OpGraph::total_flops() const {
  double sum = 0.0;
  for (const auto& n : nodes_) sum += n.flops;
  return sum;
}

double OpGraph::total_bytes() const {
  double sum = 0.0;
  for (const auto& n : nodes_) sum += n.bytes;
  return sum;
}

std::string to_dot(const OpGraph& graph, const std::string& title) {
  std::ostringstream os;
  os << "digraph \"" << title << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  // Nodes, grouped by bundle where assigned.
  std::map<int, std::vector<OpId>> bundles;
  std::vector<OpId> loose;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto id = static_cast<OpId>(i);
    if (graph.node(id).bundle >= 0) {
      bundles[graph.node(id).bundle].push_back(id);
    } else {
      loose.push_back(id);
    }
  }
  const auto emit_node = [&](OpId id, const char* indent) {
    const OpNode& n = graph.node(id);
    os << indent << "n" << id << " [label=\"" << n.name << "\\n"
       << static_cast<long long>(n.flops / 1e6) << " MFLOP, "
       << static_cast<long long>(n.bytes / 1e6) << " MB\"];\n";
  };
  for (const auto& [bundle, members] : bundles) {
    if (members.size() > 1) {
      os << "  subgraph cluster_b" << bundle << " {\n    label=\"bundle "
         << bundle << "\";\n    style=dashed;\n";
      for (OpId id : members) emit_node(id, "    ");
      os << "  }\n";
    } else {
      emit_node(members.front(), "  ");
    }
  }
  for (OpId id : loose) emit_node(id, "  ");
  // Edges.
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const auto from = static_cast<OpId>(i);
    for (OpId to : graph.successors(from)) {
      os << "  n" << from << " -> n" << to << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

OpGraph build_attention_graph(const AttentionGraphParams& params) {
  LMO_CHECK_GT(params.hidden, 0);
  LMO_CHECK_GT(params.seq_len, 0);
  LMO_CHECK_GT(params.batch, 0);
  LMO_CHECK_GE(params.num_batches, 1);

  const double h1 = static_cast<double>(params.hidden);
  const double seq = static_cast<double>(params.seq_len);
  const double b = static_cast<double>(params.batch);
  const double kv_bytes_per_elem =
      static_cast<double>(params.kv_bits) / 8.0;

  OpGraph g;
  for (int batch = 0; batch < params.num_batches; ++batch) {
    const std::string tag = "[b" + std::to_string(batch) + "]";
    // One decode token per sequence.
    const double proj_flops = 2.0 * b * h1 * h1;
    const double proj_bytes = b * h1 * 4.0 + h1 * h1 * 2.0;

    const OpId ln = g.add_op("LayerNorm" + tag, 5.0 * b * h1, b * h1 * 8.0);
    const OpId q = g.add_op("QProj" + tag, proj_flops, proj_bytes);
    const OpId k = g.add_op("KProj" + tag, proj_flops, proj_bytes);
    const OpId v = g.add_op("VProj" + tag, proj_flops, proj_bytes);
    const OpId append =
        g.add_op("KVAppend" + tag, 0.0, 2.0 * b * h1 * kv_bytes_per_elem);
    const OpId qk = g.add_op("BmmQK" + tag, 2.0 * b * seq * h1,
                             b * seq * h1 * kv_bytes_per_elem);
    const OpId sm = g.add_op("Softmax" + tag, 5.0 * b * seq, b * seq * 8.0);
    const OpId av = g.add_op("BmmAV" + tag, 2.0 * b * seq * h1,
                             b * seq * h1 * kv_bytes_per_elem);
    const OpId out = g.add_op("OutProj" + tag, proj_flops, proj_bytes);

    g.add_edge(ln, q);
    g.add_edge(ln, k);
    g.add_edge(ln, v);
    g.add_edge(k, append);
    g.add_edge(v, append);
    g.add_edge(q, qk);
    g.add_edge(append, qk);
    g.add_edge(qk, sm);
    g.add_edge(sm, av);
    g.add_edge(append, av);
    g.add_edge(av, out);
  }
  return g;
}

}  // namespace lmo::model
