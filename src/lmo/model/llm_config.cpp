#include "lmo/model/llm_config.hpp"

#include "lmo/util/check.hpp"

namespace lmo::model {

const char* to_string(Activation activation) {
  switch (activation) {
    case Activation::kGelu:
      return "gelu";
    case Activation::kRelu:
      return "relu";
    case Activation::kSilu:
      return "silu";
  }
  LMO_UNREACHABLE("bad Activation");
}

std::int64_t ModelSpec::attention_weights_per_layer() const {
  return 4 * hidden * hidden;
}

std::int64_t ModelSpec::mlp_weights_per_layer() const {
  return static_cast<std::int64_t>(mlp_matrices) * hidden * mlp_hidden;
}

std::int64_t ModelSpec::weights_per_layer() const {
  return attention_weights_per_layer() + mlp_weights_per_layer();
}

std::int64_t ModelSpec::embedding_weights() const { return vocab * hidden; }

std::int64_t ModelSpec::total_weights() const {
  return num_layers * weights_per_layer() + embedding_weights();
}

void ModelSpec::validate() const {
  LMO_CHECK_GT(num_layers, 0);
  LMO_CHECK_GT(hidden, 0);
  LMO_CHECK_GT(mlp_hidden, 0);
  LMO_CHECK_GT(num_heads, 0);
  LMO_CHECK_GT(vocab, 0);
  LMO_CHECK_EQ(hidden % num_heads, 0);
  LMO_CHECK(mlp_matrices == 2 || mlp_matrices == 3);
}

ModelSpec ModelSpec::opt_13b() {
  return ModelSpec{.name = "opt-13b",
                   .num_layers = 40,
                   .hidden = 5120,
                   .mlp_hidden = 20480,
                   .num_heads = 40,
                   .vocab = 50272,
                   .mlp_matrices = 2,
                   .activation = Activation::kRelu};
}

ModelSpec ModelSpec::opt_30b() {
  return ModelSpec{.name = "opt-30b",
                   .num_layers = 48,
                   .hidden = 7168,
                   .mlp_hidden = 28672,
                   .num_heads = 56,
                   .vocab = 50272,
                   .mlp_matrices = 2,
                   .activation = Activation::kRelu};
}

ModelSpec ModelSpec::opt_66b() {
  return ModelSpec{.name = "opt-66b",
                   .num_layers = 64,
                   .hidden = 9216,
                   .mlp_hidden = 36864,
                   .num_heads = 72,
                   .vocab = 50272,
                   .mlp_matrices = 2,
                   .activation = Activation::kRelu};
}

ModelSpec ModelSpec::llama_13b() {
  return ModelSpec{.name = "llama-13b",
                   .num_layers = 40,
                   .hidden = 5120,
                   .mlp_hidden = 13824,
                   .num_heads = 40,
                   .vocab = 32000,
                   .mlp_matrices = 3,
                   .activation = Activation::kSilu};
}

ModelSpec ModelSpec::llama_30b() {
  return ModelSpec{.name = "llama-30b",
                   .num_layers = 60,
                   .hidden = 6656,
                   .mlp_hidden = 17920,
                   .num_heads = 52,
                   .vocab = 32000,
                   .mlp_matrices = 3,
                   .activation = Activation::kSilu};
}

ModelSpec ModelSpec::llama_65b() {
  return ModelSpec{.name = "llama-65b",
                   .num_layers = 80,
                   .hidden = 8192,
                   .mlp_hidden = 22016,
                   .num_heads = 64,
                   .vocab = 32000,
                   .mlp_matrices = 3,
                   .activation = Activation::kSilu};
}

ModelSpec ModelSpec::tiny(std::int64_t layers, std::int64_t hidden,
                          std::int64_t heads, std::int64_t vocab) {
  ModelSpec spec{.name = "tiny",
                 .num_layers = layers,
                 .hidden = hidden,
                 .mlp_hidden = 4 * hidden,
                 .num_heads = heads,
                 .vocab = vocab,
                 .mlp_matrices = 2};
  spec.validate();
  return spec;
}

ModelSpec ModelSpec::by_name(const std::string& name) {
  if (name == "opt-13b") return opt_13b();
  if (name == "opt-30b") return opt_30b();
  if (name == "opt-66b") return opt_66b();
  if (name == "llama-13b") return llama_13b();
  if (name == "llama-30b") return llama_30b();
  if (name == "llama-65b") return llama_65b();
  if (name == "tiny") return tiny();
  LMO_CHECK_MSG(false, "unknown model name: " + name);
  LMO_UNREACHABLE("unreachable");
}

std::vector<std::string> ModelSpec::known_names() {
  return {"opt-13b",   "opt-30b",   "opt-66b", "llama-13b",
          "llama-30b", "llama-65b", "tiny"};
}

}  // namespace lmo::model
