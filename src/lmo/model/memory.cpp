#include "lmo/model/memory.hpp"

#include "lmo/util/check.hpp"

namespace lmo::model {

void Workload::validate() const {
  LMO_CHECK_GT(prompt_len, 0);
  LMO_CHECK_GT(gen_len, 0);
  LMO_CHECK_GT(gpu_batch, 0);
  LMO_CHECK_GT(num_batches, 0);
}

double bytes_per_element(int bits) {
  LMO_CHECK_GT(bits, 0);
  LMO_CHECK_LE(bits, 32);
  return static_cast<double>(bits) / 8.0;
}

double layer_weight_bytes(const ModelSpec& spec, int bits) {
  return static_cast<double>(spec.weights_per_layer()) *
         bytes_per_element(bits);
}

double total_weight_bytes(const ModelSpec& spec, int bits) {
  return static_cast<double>(spec.total_weights()) * bytes_per_element(bits);
}

namespace {

double kv_elements_at_len(const ModelSpec& spec, const Workload& w,
                          double seq_len) {
  // 2 (K and V) × seq × h1 × bls elements, one layer.
  return 2.0 * seq_len * static_cast<double>(spec.hidden) *
         static_cast<double>(w.block_size());
}

}  // namespace

double pf_kv_cache_bytes(const ModelSpec& spec, const Workload& w, int bits) {
  return kv_elements_at_len(spec, w,
                            static_cast<double>(w.prompt_len + 1)) *
         bytes_per_element(bits);
}

double old_kv_cache_avg_bytes(const ModelSpec& spec, const Workload& w,
                              int bits) {
  const double avg_len = static_cast<double>(w.prompt_len) +
                         static_cast<double>(w.gen_len) / 2.0;
  return kv_elements_at_len(spec, w, avg_len) * bytes_per_element(bits);
}

double kv_cache_bytes_at(const ModelSpec& spec, const Workload& w,
                         std::int64_t t, int bits) {
  LMO_CHECK_GE(t, 0);
  LMO_CHECK_LT(t, w.gen_len);
  return kv_elements_at_len(spec, w,
                            static_cast<double>(w.prompt_len + t)) *
         bytes_per_element(bits);
}

double new_kv_cache_bytes(const ModelSpec& spec, const Workload& w, int bits) {
  return kv_elements_at_len(spec, w, 1.0) * bytes_per_element(bits);
}

double peak_kv_cache_total_bytes(const ModelSpec& spec, const Workload& w,
                                 int bits) {
  return kv_elements_at_len(
             spec, w, static_cast<double>(w.prompt_len + w.gen_len)) *
         bytes_per_element(bits) * static_cast<double>(spec.num_layers);
}

double activation_bytes(const ModelSpec& spec, const Workload& w, int bits) {
  return static_cast<double>(w.block_size()) *
         static_cast<double>(spec.hidden) * bytes_per_element(bits);
}

FootprintBreakdown inference_footprint(const ModelSpec& spec,
                                       const Workload& w, int weight_bits,
                                       int kv_bits) {
  FootprintBreakdown fp;
  fp.weights = total_weight_bytes(spec, weight_bits);
  fp.kv_cache = peak_kv_cache_total_bytes(spec, w, kv_bits);
  // Working activations: a few hidden-state buffers per in-flight batch.
  fp.activations = 4.0 * activation_bytes(spec, w, 16);
  return fp;
}

double attention_projection_flops(const ModelSpec& spec, const Workload& w) {
  const double h1 = static_cast<double>(spec.hidden);
  return static_cast<double>(w.block_size()) * 2.0 * 4.0 * h1 * h1;
}

double attention_score_flops(const ModelSpec& spec, const Workload& w,
                             std::int64_t t) {
  const double h1 = static_cast<double>(spec.hidden);
  const double seq = static_cast<double>(w.prompt_len + t);
  // Per sequence: score QKᵀ 2·seq·h1 + weighted sum AV 2·seq·h1 + softmax.
  return static_cast<double>(w.block_size()) * (4.0 * seq * h1 + 5.0 * seq);
}

double attention_decode_flops(const ModelSpec& spec, const Workload& w,
                              std::int64_t t) {
  return attention_projection_flops(spec, w) +
         attention_score_flops(spec, w, t);
}

double mlp_decode_flops(const ModelSpec& spec, const Workload& w) {
  const double bls = static_cast<double>(w.block_size());
  return bls * 2.0 * static_cast<double>(spec.mlp_weights_per_layer());
}

double layer_prefill_flops(const ModelSpec& spec, const Workload& w) {
  const double h1 = static_cast<double>(spec.hidden);
  const double bls = static_cast<double>(w.block_size());
  const double s = static_cast<double>(w.prompt_len);
  const double proj =
      2.0 * s * (4.0 * h1 * h1 +
                 static_cast<double>(spec.mlp_weights_per_layer()));
  const double attn = 4.0 * s * s * h1;  // quadratic prefill attention
  return bls * (proj + attn);
}

double attention_kv_bytes_touched(const ModelSpec& spec, const Workload& w,
                                  std::int64_t t, int bits) {
  // The decode-attention scan reads the whole per-layer KV cache once and
  // appends one token's K and V.
  return kv_cache_bytes_at(spec, w, t, bits) +
         new_kv_cache_bytes(spec, w, bits);
}

}  // namespace lmo::model
